"""API-hygiene rules (API001-API002).

The public API layer promises two things these rules keep honest:

* every event flowing through :class:`repro.api.events.EventBus` has a
  statically known name, so subscribers can be checked against the
  catalog (API001 forces call sites through the ``EV_*`` constants);
* run configuration is immutable after construction -- the
  ``object.__setattr__`` escape hatch frozen dataclasses need in
  ``__init__``/``__post_init__`` must never appear anywhere else (API002).
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Optional, Tuple

from repro.analysis.framework import FileContext, LintRule, register_rule

__all__ = ["EmitConstantRule", "FrozenConfigWriteRule"]

#: Methods where frozen dataclasses legitimately self-assign.
_FROZEN_INIT_METHODS = frozenset({"__init__", "__post_init__", "__setstate__"})


def _event_constants() -> FrozenSet[str]:
    """Names of the ``EV_*`` constants exported by :mod:`repro.api.events`.

    Read from the live module so the rule and the event catalog can never
    drift apart; falls back to an empty set (rule flags every emit) if the
    api layer is unimportable, which only happens in broken checkouts.
    """
    try:
        from repro.api import events
    except Exception:  # pragma: no cover - only on a broken tree
        return frozenset()
    return frozenset(name for name in dir(events) if name.startswith("EV_"))


@register_rule
class EmitConstantRule(LintRule):
    rule_id = "API001"
    name = "emit-requires-event-constant"
    severity = "error"
    rationale = (
        "`bus.emit(\"phase\", ...)` with a string literal (or a computed "
        "name) cannot be cross-checked against the event catalog, so a "
        "typo becomes an event nobody receives. Call sites must pass one "
        "of the EV_* constants from repro.api.events."
    )

    def __init__(self) -> None:
        self._constants: Optional[FrozenSet[str]] = None

    def check(self, ctx: FileContext) -> None:
        if self._constants is None:
            self._constants = _event_constants()
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "emit"
            ):
                continue
            if not node.args:
                ctx.report(
                    node, "emit() without an event name argument"
                )
                continue
            name_arg = node.args[0]
            terminal = None
            if isinstance(name_arg, ast.Name):
                terminal = name_arg.id
            elif isinstance(name_arg, ast.Attribute):
                terminal = name_arg.attr
            if terminal is None or terminal not in self._constants:
                ctx.report(
                    name_arg,
                    "emit() event name must be an EV_* constant from "
                    "repro.api.events (statically checkable), not a "
                    "literal or computed value",
                )


@register_rule
class FrozenConfigWriteRule(LintRule):
    rule_id = "API002"
    name = "frozen-field-write-outside-init"
    severity = "error"
    rationale = (
        "`object.__setattr__` outside __init__/__post_init__ defeats "
        "frozen dataclasses: the config tree is hashed into run "
        "fingerprints at construction, so a later write silently "
        "invalidates every reproducibility guarantee attached to them."
    )

    def check(self, ctx: FileContext) -> None:
        def visit(node: ast.AST, func_stack: Tuple[str, ...]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    visit(child, func_stack + (child.name,))
                    continue
                if (
                    isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Attribute)
                    and child.func.attr == "__setattr__"
                    and isinstance(child.func.value, ast.Name)
                    and child.func.value.id == "object"
                    and not any(
                        name in _FROZEN_INIT_METHODS for name in func_stack
                    )
                ):
                    ctx.report(
                        child,
                        "`object.__setattr__` outside "
                        "__init__/__post_init__ mutates a frozen config "
                        "after its fingerprint was taken",
                    )
                visit(child, func_stack)

        visit(ctx.tree, ())
