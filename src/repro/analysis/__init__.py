"""Invariant-enforcing static analysis for the repro codebase.

``repro.analysis`` is an AST lint layer with project-specific rules for the
invariants the reproduction depends on:

* **determinism** (DET001-DET005) -- seeded-RNG-only, no wall clock outside
  the observability/resilience layers;
* **spawn-safety** (SPN001-SPN002) -- picklable worker payloads, registry
  writes only through registration APIs;
* **hot-loop purity** (HOT001-HOT003) -- no Python loops, copies or fresh
  allocations inside the profiled stages;
* **API hygiene** (API001-API002) -- EventBus names via ``EV_*`` constants,
  frozen configs written only in ``__init__``/``__post_init__``;
* **suppression hygiene** (SUP001-SUP002) -- every ``# repro: noqa[...]``
  must name a real rule and carry a justification;
* **interprocedural dataflow** (FLOW-RNG, FLOW-HOT, FLOW-PKL, FLOW-MUT) --
  the same invariants enforced *across* call boundaries by the
  :mod:`repro.analysis.flow` layer: entropy-seeded generators laundered
  through helpers, allocating callees of hot stages, unpicklable pool
  payloads behind wrappers, worker-reachable module-global writes.

Run it as ``python -m repro lint`` (see ``docs/static-analysis.md``), or
programmatically::

    from repro.analysis import lint_paths, render
    findings = lint_paths(["src/repro"])
    print(render(findings, "json"))

Importing this package registers every shipped rule; the registry is the
single source of truth for ``--list-rules``, the docs catalog and the
self-lint test.
"""

# Importing the rule modules registers their rules as a side effect; the
# self-lint test asserts the resulting catalog, so deleting any module
# below is a test failure, not a silent loss of coverage.
from repro.analysis import (
    rules_api,  # noqa: F401
    rules_determinism,  # noqa: F401
    rules_flow_hot,  # noqa: F401
    rules_flow_mut,  # noqa: F401
    rules_flow_pkl,  # noqa: F401
    rules_flow_rng,  # noqa: F401
    rules_hotloop,  # noqa: F401
    rules_spawn,  # noqa: F401
)
from repro.analysis.findings import SEVERITIES, Finding
from repro.analysis.flow import FlowProject, cache_counters
from repro.analysis.framework import (
    FileContext,
    LintRule,
    Suppression,
    all_rules,
    apply_baseline,
    baseline_payload,
    collect_files,
    get_rules,
    lint_file,
    lint_paths,
    lint_source,
    load_baseline,
    parse_suppressions,
    register_rule,
    rule_ids,
    stale_fingerprints,
)
from repro.analysis.report import (
    render,
    render_json,
    render_sarif,
    render_text,
    summarize,
)

__all__ = [
    "SEVERITIES",
    "FileContext",
    "Finding",
    "FlowProject",
    "LintRule",
    "Suppression",
    "all_rules",
    "apply_baseline",
    "baseline_payload",
    "cache_counters",
    "collect_files",
    "get_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "parse_suppressions",
    "register_rule",
    "render",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_ids",
    "stale_fingerprints",
    "summarize",
]
