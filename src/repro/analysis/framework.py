"""Rule framework of :mod:`repro.analysis`.

The pieces every rule shares:

* :class:`LintRule` -- one named, documented invariant check over a file's
  AST.  Rules are *instances* registered in a module-level registry
  (:func:`register_rule`), so the CLI, the self-lint test and the docs all
  enumerate the same catalog.
* :class:`FileContext` -- everything a rule may inspect about the file under
  analysis (source, AST, normalised module path) plus the :meth:`report`
  sink rules deposit findings into.
* suppressions -- ``# repro: noqa[RULE] -- justification`` comments.  The
  bracket names the rule(s) being silenced and the justification text is
  **mandatory**: a naked suppression is itself a finding (``SUP001``), and
  naming an unknown rule is another (``SUP002``).  A suppression on a line
  containing only the comment applies to the next line, so long statements
  can be annotated without exceeding line length.
* :func:`lint_source` / :func:`lint_file` / :func:`lint_paths` -- the
  drivers that parse, run every selected rule and apply suppressions.
* baselines -- :func:`load_baseline` / :func:`apply_baseline` /
  :func:`baseline_payload` grandfather known findings (keyed by a
  line-number-free fingerprint) so the linter can be adopted incrementally
  on a dirty tree.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type, Union

from repro.analysis.findings import SEVERITIES, Finding

__all__ = [
    "FileContext",
    "LintRule",
    "Suppression",
    "all_rules",
    "apply_baseline",
    "baseline_payload",
    "collect_files",
    "get_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "parse_suppressions",
    "register_rule",
    "rule_ids",
    "stale_fingerprints",
]

#: Rule id of the syntax-error pseudo-finding (a file the parser rejects).
SYNTAX_RULE = "SYN001"
#: Rule id of a suppression carrying no justification text.
MISSING_JUSTIFICATION_RULE = "SUP001"
#: Rule id of a suppression naming an unknown rule.
UNKNOWN_SUPPRESSION_RULE = "SUP002"

_NOQA = re.compile(
    r"#\s*repro:\s*noqa\[(?P<rules>[A-Za-z0-9_,\s-]*)\]\s*(?:--|:)?\s*(?P<why>.*)$"
)


# ----------------------------------------------------------------------
# Rules and their registry.
# ----------------------------------------------------------------------
class LintRule:
    """One invariant check.  Subclasses override :meth:`check`.

    Attributes
    ----------
    rule_id:
        Short stable id (``DET004``); what suppressions and ``--rules``
        select by.
    name:
        Kebab-case human name (``wall-clock-read``).
    severity:
        ``"error"`` or ``"warning"`` (see :data:`~repro.analysis.findings.SEVERITIES`).
    rationale:
        One paragraph: which reproduction invariant the rule protects and
        why violating it has bitten before.  Rendered by ``--list-rules``
        and the docs rule catalog.
    """

    rule_id: str = ""
    name: str = ""
    severity: str = "error"
    rationale: str = ""

    def check(self, ctx: "FileContext") -> None:
        """Inspect ``ctx`` and :meth:`FileContext.report` every violation."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<{type(self).__name__} {self.rule_id} ({self.name})>"


class _SuppressionHygieneRule(LintRule):
    """Placeholder entries so SUP001/SUP002 appear in the rule catalog.

    The actual checking happens in :func:`lint_source` while suppressions
    are applied (it needs the full suppression table, not the AST), but the
    registry still carries one entry per id so ``--list-rules``, ``--rules``
    filtering and the self-lint catalog test see them.
    """

    def __init__(self, rule_id: str, name: str, rationale: str) -> None:
        self.rule_id = rule_id
        self.name = name
        self.severity = "error"
        self.rationale = rationale

    def check(self, ctx: "FileContext") -> None:
        return None


_RULES: Dict[str, LintRule] = {}


def register_rule(rule: Union[LintRule, Type[LintRule]]) -> LintRule:
    """Add ``rule`` to the registry (keyed by ``rule_id``); returns it.

    Usable as a plain call or as a class decorator (the class is
    instantiated with no arguments).  Re-registering an id raises -- two
    rules silently sharing an id would make suppressions ambiguous.
    """
    if isinstance(rule, type):
        rule = rule()
    if not rule.rule_id or not rule.name:
        raise ValueError(f"rule {rule!r} must define rule_id and name")
    if rule.severity not in SEVERITIES:
        raise ValueError(
            f"rule {rule.rule_id}: severity must be one of {SEVERITIES}"
        )
    if rule.rule_id in _RULES:
        raise ValueError(f"rule id {rule.rule_id} is already registered")
    _RULES[rule.rule_id] = rule
    return rule


def all_rules() -> List[LintRule]:
    """Every registered rule, sorted by id."""
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def rule_ids() -> List[str]:
    """Sorted ids of every registered rule."""
    return sorted(_RULES)


def get_rules(selected: Optional[Iterable[str]] = None) -> List[LintRule]:
    """Resolve a ``--rules`` selection (``None`` = every registered rule)."""
    if selected is None:
        return all_rules()
    chosen = list(selected)
    unknown = sorted(set(chosen) - set(_RULES))
    if unknown:
        raise KeyError(
            f"unknown rule id(s) {', '.join(unknown)}; "
            f"registered: {', '.join(sorted(_RULES))}"
        )
    return [_RULES[rule_id] for rule_id in sorted(set(chosen))]


register_rule(
    _SuppressionHygieneRule(
        MISSING_JUSTIFICATION_RULE,
        "suppression-without-justification",
        "Every `# repro: noqa[...]` must say *why* the invariant is waived "
        "at this site; a bare suppression rots into folklore nobody dares "
        "to remove.",
    )
)
register_rule(
    _SuppressionHygieneRule(
        UNKNOWN_SUPPRESSION_RULE,
        "suppression-of-unknown-rule",
        "A suppression naming a rule id that does not exist silences "
        "nothing and usually means a typo is letting the real finding "
        "through.",
    )
)


# ----------------------------------------------------------------------
# File context.
# ----------------------------------------------------------------------
@dataclass
class FileContext:
    """Everything one rule invocation may inspect about one file."""

    #: Display path (as handed to the runner; what findings print).
    path: str
    #: Source text of the file.
    source: str
    #: Parsed module AST.
    tree: ast.Module
    #: Path normalised to start at the package root (``repro/obs/x.py``)
    #: so path-scoped rules match regardless of checkout location.
    module_path: str
    #: Findings deposited by rules (the driver owns post-processing).
    findings: List[Finding] = field(default_factory=list)
    #: Whole-program view for the interprocedural (FLOW-*) rules: a
    #: :class:`repro.analysis.flow.symbols.FlowProject` covering every file
    #: of the run when linting via :func:`lint_paths`, ``None`` for
    #: single-file entry points (flow rules then fall back to a
    #: single-file project).  Typed loosely to keep the framework free of
    #: an import cycle with the flow layer.
    project: Optional[object] = None

    _active_rule: Optional[LintRule] = None

    def report(
        self,
        node: ast.AST,
        message: str,
        *,
        line: Optional[int] = None,
        col: Optional[int] = None,
    ) -> None:
        """Record one violation of the currently running rule at ``node``."""
        rule = self._active_rule
        if rule is None:  # pragma: no cover - driver always sets it
            raise RuntimeError("report() called outside a rule check")
        self.findings.append(
            Finding(
                rule=rule.rule_id,
                severity=rule.severity,
                path=self.path,
                line=line if line is not None else getattr(node, "lineno", 1),
                col=col if col is not None else getattr(node, "col_offset", 0),
                message=message,
            )
        )

    def in_path(self, *prefixes: str) -> bool:
        """True when the file lives under any of the ``repro/...`` prefixes."""
        return any(self.module_path.startswith(prefix) for prefix in prefixes)


def _module_relpath(path: Union[str, Path]) -> str:
    """Normalise ``path`` to a ``repro/...`` relative posix path.

    Rules scope themselves to package-relative locations ("everything under
    ``repro/obs/``"); this finds the last ``repro`` package segment so the
    scoping works for absolute paths, ``src/``-prefixed paths and installed
    trees alike.  Paths outside the package come back as their plain posix
    form (path-scoped rules then simply never match).
    """
    parts = Path(path).as_posix().split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return "/".join(parts)


# ----------------------------------------------------------------------
# Suppressions.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: noqa[...]`` comment."""

    #: Line the comment sits on.
    line: int
    #: Line the suppression applies to (next line for comment-only lines).
    applies_to: int
    #: Rule ids named in the bracket.
    rules: Tuple[str, ...]
    #: Justification text after the bracket ("" when missing).
    justification: str


def parse_suppressions(source: str) -> List[Suppression]:
    """Extract every ``# repro: noqa[...]`` comment from ``source``.

    Comments are found with :mod:`tokenize`, so the marker inside string
    literals is never misread as a suppression.  A comment on a line of its
    own applies to the following line; a trailing comment applies to its
    own line.
    """
    suppressions: List[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _NOQA.search(token.string)
        if match is None:
            continue
        names = tuple(
            name.strip() for name in match.group("rules").split(",") if name.strip()
        )
        line = token.start[0]
        # A comment-only line (nothing but whitespace before the `#`)
        # annotates the next line.
        standalone = token.line[: token.start[1]].strip() == ""
        suppressions.append(
            Suppression(
                line=line,
                applies_to=line + 1 if standalone else line,
                rules=names,
                justification=match.group("why").strip(),
            )
        )
    return suppressions


def _apply_suppressions(
    path: str, findings: List[Finding], suppressions: Sequence[Suppression]
) -> List[Finding]:
    """Mark suppressed findings and append the SUP001/SUP002 hygiene ones."""
    by_line: Dict[int, List[Suppression]] = {}
    for suppression in suppressions:
        by_line.setdefault(suppression.applies_to, []).append(suppression)

    out: List[Finding] = []
    for finding in findings:
        covering = next(
            (
                s
                for s in by_line.get(finding.line, ())
                if finding.rule in s.rules and s.justification
            ),
            None,
        )
        if covering is not None:
            finding = finding.suppress(covering.justification)
        out.append(finding)

    known = set(_RULES) | {SYNTAX_RULE}
    for suppression in suppressions:
        if not suppression.justification:
            out.append(
                Finding(
                    rule=MISSING_JUSTIFICATION_RULE,
                    severity="error",
                    path=path,
                    line=suppression.line,
                    col=0,
                    message=(
                        "suppression without justification: write "
                        "`# repro: noqa[RULE] -- why this site is exempt`"
                    ),
                )
            )
        for name in suppression.rules:
            if name not in known:
                out.append(
                    Finding(
                        rule=UNKNOWN_SUPPRESSION_RULE,
                        severity="error",
                        path=path,
                        line=suppression.line,
                        col=0,
                        message=f"suppression names unknown rule {name!r}",
                    )
                )
    out.sort(key=lambda f: (f.line, f.col, f.rule))
    return out


# ----------------------------------------------------------------------
# Drivers.
# ----------------------------------------------------------------------
def lint_source(
    source: str,
    path: Union[str, Path] = "<string>",
    *,
    rules: Optional[Sequence[LintRule]] = None,
    project: Optional[object] = None,
) -> List[Finding]:
    """Lint one source string; returns every finding (suppressed included).

    The workhorse behind :func:`lint_file` and the fixture tests: parse,
    run each rule, apply suppressions, append suppression-hygiene findings.
    ``project`` carries the whole-program view for the FLOW-* rules when
    the caller linted more than this one file.
    """
    display = str(path)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                rule=SYNTAX_RULE,
                severity="error",
                path=display,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}",
            )
        ]
    ctx = FileContext(
        path=display,
        source=source,
        tree=tree,
        module_path=_module_relpath(path),
        project=project,
    )
    for rule in rules if rules is not None else all_rules():
        ctx._active_rule = rule
        rule.check(ctx)
    ctx._active_rule = None
    return _apply_suppressions(display, ctx.findings, parse_suppressions(source))


def lint_file(
    path: Union[str, Path],
    *,
    rules: Optional[Sequence[LintRule]] = None,
    project: Optional[object] = None,
) -> List[Finding]:
    """Lint one file on disk."""
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, path, rules=rules, project=project)


def collect_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files and directory trees to a sorted, deterministic file list."""
    files: List[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files.extend(sorted(entry.rglob("*.py")))
        elif entry.exists():
            files.append(entry)
        else:
            raise FileNotFoundError(f"no such file or directory: {entry}")
    return files


def lint_paths(
    paths: Sequence[Union[str, Path]],
    *,
    rules: Optional[Sequence[LintRule]] = None,
    build_project: bool = True,
) -> List[Finding]:
    """Lint files and directory trees (``*.py``, sorted, deterministic).

    All files of the run form one :class:`~repro.analysis.flow.symbols.FlowProject`
    shared by every per-file rule invocation, so the FLOW-* families see
    taint that crosses module boundaries.  ``build_project=False`` skips
    the whole-program pass (the CLI's ``--no-flow``).
    """
    files = collect_files(paths)
    sources: List[Tuple[str, str]] = []
    for file in files:
        try:
            sources.append((str(file), file.read_text(encoding="utf-8")))
        except OSError:
            continue
    project: Optional[object] = None
    if build_project:
        # Imported here: the flow layer builds on this framework module.
        from repro.analysis.flow.symbols import FlowProject

        project = FlowProject(sources)
    findings: List[Finding] = []
    for path, source in sources:
        findings.extend(
            lint_source(source, path, rules=rules, project=project)
        )
    return findings


# ----------------------------------------------------------------------
# Baselines.
# ----------------------------------------------------------------------
def baseline_payload(findings: Sequence[Finding]) -> Dict[str, object]:
    """The JSON payload ``--write-baseline`` persists.

    Fingerprints are counted, not just collected: two distinct findings of
    the same rule+message in one file consume two baseline slots, so fixing
    one of them surfaces the other instead of hiding it forever.
    """
    counts: Dict[str, int] = {}
    for finding in findings:
        if finding.suppressed:
            continue
        key = finding.fingerprint()
        counts[key] = counts.get(key, 0) + 1
    return {"version": 1, "fingerprints": counts}


def load_baseline(path: Union[str, Path]) -> Dict[str, int]:
    """Load a baseline file; raises ``ValueError`` on a malformed one."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if (
        not isinstance(payload, dict)
        or payload.get("version") != 1
        or not isinstance(payload.get("fingerprints"), dict)
    ):
        raise ValueError(f"{path} is not a repro-lint baseline file")
    return {str(key): int(value) for key, value in payload["fingerprints"].items()}


def apply_baseline(
    findings: Sequence[Finding], baseline: Dict[str, int]
) -> List[Finding]:
    """Drop findings the baseline grandfathers (oldest-first per key)."""
    budget = dict(baseline)
    kept: List[Finding] = []
    for finding in findings:
        key = finding.fingerprint()
        if not finding.suppressed and budget.get(key, 0) > 0:
            budget[key] -= 1
            continue
        kept.append(finding)
    return kept


def stale_fingerprints(
    findings: Sequence[Finding], baseline: Dict[str, int]
) -> Dict[str, int]:
    """Baseline slots no current finding consumes (drift detection).

    Returns ``fingerprint -> unused count`` for every baseline entry whose
    grandfathered finding has since been fixed (or whose message changed).
    A drifting baseline silently over-grants budget, so CI fails on it and
    asks for a ``--write-baseline`` refresh.
    """
    budget = dict(baseline)
    for finding in findings:
        if finding.suppressed:
            continue
        key = finding.fingerprint()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
    return {key: count for key, count in sorted(budget.items()) if count > 0}
