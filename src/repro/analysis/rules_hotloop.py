"""Hot-loop purity rules (HOT001-HOT003).

The seven profiled stages (``compute_step``/``advance``/``stripe_sum``/
``wir_update``/``gossip_round``/``lb_decide``/``lb_apply``) execute once per
iteration per replica; the paper-scale campaigns run millions of such
iterations.  PR 5's large-P work got its speedups almost entirely by
removing Python-level loops and per-iteration allocations from these
regions -- these rules keep them out.

The regions are declared in :data:`HOT_REGIONS` as ``Class.method`` names
per file, each in one of two modes:

* ``"loop"`` -- only code inside the function's outermost ``for`` (the
  iteration loop itself is the boundary; setup/teardown around it is free);
* ``"body"`` -- the whole function is hot (per-iteration helpers).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.analysis.framework import FileContext, LintRule, register_rule
from repro.analysis.rules_determinism import _collect_imports, _qualified

__all__ = ["HOT_REGIONS", "HotLoopPythonLoopRule", "HotLoopCopyRule", "HotLoopAllocationRule"]

#: file (package-relative) -> {qualified function name -> "loop" | "body"}.
HOT_REGIONS: Dict[str, Dict[str, str]] = {
    "repro/runtime/skeleton.py": {
        "IterativeRunner.run": "loop",
        "IterativeRunner._stripe_loads": "body",
        "IterativeRunner._build_context": "body",
    },
    "repro/batch/runner.py": {
        "BatchRunner.run": "loop",
        "BatchRunner._stripe_loads": "body",
        "BatchRunner._stripe_loads_all": "body",
        "BatchRunner._fill_columns": "body",
        "BatchRunner._build_context": "body",
        "BatchRunner._execute_lb_step": "body",
    },
}

#: numpy constructors that allocate a fresh array per call.
_NP_ALLOCATORS = frozenset(
    {
        "zeros",
        "ones",
        "empty",
        "full",
        "zeros_like",
        "ones_like",
        "empty_like",
        "full_like",
        "arange",
        "linspace",
        "concatenate",
        "stack",
        "vstack",
        "hstack",
        "column_stack",
        "tile",
        "repeat",
        "copy",
        "array",
        "asarray",
        "eye",
    }
)


def _qualified_functions(
    tree: ast.Module,
) -> Iterator[Tuple[str, Union[ast.FunctionDef, ast.AsyncFunctionDef]]]:
    """Yield ``("Class.method" | "function", node)`` for every def."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield f"{node.name}.{item.name}", item


def _outermost_for(func: ast.AST) -> Optional[ast.For]:
    """First ``for`` statement in DFS statement order (the iteration loop)."""

    def scan(body: List[ast.stmt]) -> Optional[ast.For]:
        for stmt in body:
            if isinstance(stmt, ast.For):
                return stmt
            for attr in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, attr, None)
                if inner:
                    found = scan(inner)
                    if found is not None:
                        return found
            handlers = getattr(stmt, "handlers", None)
            if handlers:
                for handler in handlers:
                    found = scan(handler.body)
                    if found is not None:
                        return found
        return None

    return scan(getattr(func, "body", []))


def _region_nodes(ctx: FileContext) -> Iterator[ast.AST]:
    """Every AST node inside a hot region of this file."""
    regions = HOT_REGIONS.get(ctx.module_path)
    if not regions:
        return
    for name, func in _qualified_functions(ctx.tree):
        mode = regions.get(name)
        if mode is None:
            continue
        if mode == "loop":
            loop = _outermost_for(func)
            if loop is None:
                continue
            roots: List[ast.stmt] = list(loop.body) + list(loop.orelse)
        else:
            roots = list(func.body)
        for root in roots:
            yield from ast.walk(root)


@register_rule
class HotLoopPythonLoopRule(LintRule):
    rule_id = "HOT001"
    name = "python-loop-in-hot-stage"
    severity = "error"
    rationale = (
        "A Python-level `for`/`while` inside a profiled stage iterates once "
        "per PE or replica per iteration -- the O(P*R*T) interpreter cost "
        "that PR 5's vectorization removed. Express the stage as numpy "
        "array ops; if a loop is provably O(small-constant), suppress with "
        "the bound in the justification."
    )

    def check(self, ctx: FileContext) -> None:
        for node in _region_nodes(ctx):
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                ctx.report(
                    node,
                    "Python loop inside a profiled hot stage; vectorize "
                    "over PEs/replicas with array ops",
                )


@register_rule
class HotLoopCopyRule(LintRule):
    rule_id = "HOT002"
    name = "copy-in-hot-stage"
    severity = "error"
    rationale = (
        "`list(...)` and `.tolist()` materialize a Python object per "
        "element on every iteration; hot stages must stay in array land "
        "(ints/floats out of `.item()` or scalar indexing are fine)."
    )

    def check(self, ctx: FileContext) -> None:
        for node in _region_nodes(ctx):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "list":
                ctx.report(
                    node,
                    "`list(...)` copy inside a profiled hot stage",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "tolist"
            ):
                ctx.report(
                    node,
                    "`.tolist()` copy inside a profiled hot stage",
                )


@register_rule
class HotLoopAllocationRule(LintRule):
    rule_id = "HOT003"
    name = "allocation-in-hot-stage"
    severity = "warning"
    rationale = (
        "Fresh numpy arrays and comprehensions inside a profiled stage "
        "allocate on every iteration; preallocate buffers in __init__ and "
        "write in place (`out=`, slice assignment). Warning severity: some "
        "allocations are once-per-LB-step, not once-per-iteration -- "
        "suppress those with the cadence in the justification."
    )

    def check(self, ctx: FileContext) -> None:
        modules, members = _collect_imports(ctx.tree)
        for node in _region_nodes(ctx):
            if isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                ctx.report(
                    node,
                    "comprehension allocates per iteration inside a "
                    "profiled hot stage",
                )
            elif isinstance(node, ast.Call):
                qualified = _qualified(node.func, modules, members)
                if qualified is None:
                    continue
                parts = qualified.split(".")
                if (
                    len(parts) == 2
                    and parts[0] == "numpy"
                    and parts[1] in _NP_ALLOCATORS
                ):
                    ctx.report(
                        node,
                        f"`np.{parts[1]}(...)` allocates inside a profiled "
                        "hot stage; preallocate and write in place",
                    )
