"""Spawn-boundary helpers shared by FLOW-PKL and FLOW-MUT.

Both rule families care about the same call shapes SPN001 matches --
pool submissions (``.submit``/``.apply_async``/...), ``Process``/``Pool``/
``SupervisedPool`` constructors -- but from two angles: FLOW-PKL follows
the *payload* expressions crossing the boundary, FLOW-MUT resolves the
*worker callable* and walks the call graph from it.  This module detects
the shapes once and offers both views.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.flow.callgraph import CallGraph, CallSite
from repro.analysis.flow.summaries import MutationInfo, node_location
from repro.analysis.flow.symbols import (
    FlowProject,
    FunctionInfo,
    ModuleInfo,
    _annotation_name,
)
from repro.analysis.rules_spawn import (
    _CTOR_KEYWORDS,
    _MUTATORS,
    _SUBMIT_METHODS,
    _callable_name,
)

__all__ = [
    "Submission",
    "collect_mutations",
    "resolve_callable_expr",
    "submission_of",
]

#: Constructor keywords whose values are worker *payload* (not callables).
_PAYLOAD_KEYWORDS = frozenset({"args", "kwds", "kwargs", "initargs"})


@dataclass
class Submission:
    """One call expression that ships values to a spawn-start worker."""

    site: CallSite
    #: Human label of the boundary (``\`.submit(...)\` submission``).
    description: str
    #: Expressions naming the worker callable(s) (target/initializer/...).
    entries: List[ast.expr] = field(default_factory=list)
    #: Every expression whose value crosses the process boundary.
    crossings: List[ast.expr] = field(default_factory=list)


def submission_of(site: CallSite) -> Optional[Submission]:
    """Classify a call site as a spawn submission, by shape.

    Shape-based on purpose: pools are often held in variables the resolver
    cannot type, and missing a submission is worse than double-checking a
    non-pool ``submit`` (clean payloads produce no findings either way).
    """
    node = site.node
    func = node.func

    if (
        isinstance(func, ast.Attribute)
        and func.attr in _SUBMIT_METHODS
        and node.args
    ):
        submission = Submission(
            site=site, description=f"`.{func.attr}(...)` submission"
        )
        submission.entries.append(node.args[0])
        for arg in node.args:
            target = arg.value if isinstance(arg, ast.Starred) else arg
            submission.crossings.append(target)
        for keyword in node.keywords:
            submission.crossings.append(keyword.value)
        return submission

    ctor = _callable_name(func)
    matched = False
    callable_keywords: Set[str] = set()
    for suffix, keywords in _CTOR_KEYWORDS.items():
        if ctor.endswith(suffix):
            matched = True
            callable_keywords.update(keywords)
    if not matched:
        return None
    submission = Submission(site=site, description=f"`{ctor}(...)` constructor")
    seen: Set[int] = set()

    def add(expr: ast.expr, entry: bool) -> None:
        if id(expr) in seen:
            return
        seen.add(id(expr))
        if entry:
            submission.entries.append(expr)
        submission.crossings.append(expr)

    for keyword in node.keywords:
        if keyword.arg in callable_keywords:
            add(keyword.value, entry=True)
        elif keyword.arg in _PAYLOAD_KEYWORDS:
            add(keyword.value, entry=False)
    if ctor.endswith("SupervisedPool") and node.args:
        add(node.args[0], entry=True)
    if not submission.entries and not submission.crossings:
        return None
    return submission


def resolve_callable_expr(
    project: FlowProject, module: ModuleInfo, expr: ast.expr
) -> Optional[FunctionInfo]:
    """Resolve a worker-callable expression to a project function.

    Handles bare names (same-module defs, imported members through
    re-export chains), import-qualified dotted paths, and unwraps
    ``functools.partial(fn, ...)`` to its first argument.
    """
    if isinstance(expr, ast.Call):
        if _callable_name(expr.func) == "partial" and expr.args:
            return resolve_callable_expr(project, module, expr.args[0])
        return None
    dotted = _annotation_name(expr)
    if dotted is None:
        return None
    parts = dotted.split(".")
    if len(parts) == 1:
        name = parts[0]
        fn = module.functions.get(name)
        if fn is not None and fn.class_name is None:
            return fn
        imported = module.import_members.get(name)
        if imported is not None:
            resolved = project.resolve_member(imported)
            if isinstance(resolved, FunctionInfo):
                return resolved
        return None
    head = parts[0]
    if head in module.import_members:
        qualified = ".".join([module.import_members[head]] + parts[1:])
    elif head in module.import_modules:
        qualified = ".".join([module.import_modules[head]] + parts[1:])
    else:
        return None
    resolved = project.resolve_member(qualified)
    return resolved if isinstance(resolved, FunctionInfo) else None


# ----------------------------------------------------------------------
# Module-global writes (the FLOW-MUT writer side).
# ----------------------------------------------------------------------
#: Suppressing either rule at the write site excuses the write from the
#: reachability analysis as well.
_MUTATION_WAIVER_RULES = ("SPN002", "FLOW-MUT")


def collect_mutations(graph: CallGraph) -> Dict[str, MutationInfo]:
    """Direct module-global writes of every project function.

    Generalizes SPN002's write detection in two ways: *any* module-global
    mutable binding counts (not just UPPER_CASE registries), and writes
    inside ``register*``-style API functions count too -- a worker calling
    its own registration API still only mutates the worker's copy.
    Rebinding via ``global`` declarations is also a write.
    """
    out: Dict[str, MutationInfo] = {}
    for fn in graph.project.functions():
        module = graph.project.by_path[fn.path]
        suppressed = module.suppressed_lines(*_MUTATION_WAIVER_RULES)
        scope = graph.scope_of(fn)
        body_nodes: List[ast.AST] = []
        for stmt in fn.node.body:
            body_nodes.extend(ast.walk(stmt))

        global_decls: Set[str] = set()
        for node in body_nodes:
            if isinstance(node, ast.Global):
                global_decls.update(node.names)

        def global_mutable(expr: ast.AST) -> Optional[str]:
            """Name of a module-global mutable, unless locally shadowed."""
            if not isinstance(expr, ast.Name):
                return None
            name = expr.id
            if name in global_decls:
                return name
            if name in module.mutable_globals and name not in scope.assigned:
                return name
            return None

        names: List[str] = []
        sites: List[Tuple[int, int]] = []

        def record(name: str, node: ast.AST) -> None:
            line, col = node_location(node)
            if line in suppressed:
                return
            if name not in names:
                names.append(name)
            sites.append((line, col))

        for node in body_nodes:
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name) and target.id in global_decls:
                        record(target.id, node)
                    elif isinstance(target, ast.Subscript):
                        name = global_mutable(target.value)
                        if name is not None:
                            record(name, node)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        name = global_mutable(target.value)
                        if name is not None:
                            record(name, node)
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in _MUTATORS:
                    name = global_mutable(node.func.value)
                    if name is not None:
                        record(name, node)
        out[fn.ref] = MutationInfo(names=tuple(names), sites=sites)
    return out
