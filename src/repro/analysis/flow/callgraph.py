"""Call-graph construction over the :mod:`~repro.analysis.flow.symbols` table.

Every :class:`ast.Call` inside every project function is resolved to one
of four shapes:

* a **project function/method** (:attr:`CallSite.target`) -- via imported
  members (re-export chains included), same-module functions, ``self``
  methods, ``self.attr`` attributes typed by ``__init__`` assignments or
  annotations, annotated parameters/locals, constructor-typed locals, or
  -- as the conservative fallback for dynamic dispatch -- the *unique*
  project function with that bare name;
* a **project class constructor** (:attr:`CallSite.target_class`), which
  the engines treat as a call to ``__init__``;
* an **external** callable with a known dotted path
  (:attr:`CallSite.external`, e.g. ``numpy.zeros``, ``functools.partial``,
  or a builtin name);
* **unresolved** (dynamic dispatch with multiple candidates, calls on
  values of unknown type): :attr:`CallSite.unresolved_attr` keeps the
  attribute name so shape-based rules (pool submissions) still match.

Resolution is deliberately *under*-approximate everywhere except the
shape-based sink patterns: an unresolved call contributes no edge and no
taint, which keeps the interprocedural rules free of resolution-driven
false positives.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.analysis.flow.symbols import (
    ClassInfo,
    FlowProject,
    FunctionInfo,
    ModuleInfo,
    _annotation_name,
    _ctor_type,
)

__all__ = ["CallGraph", "CallSite", "build_callgraph"]

#: Method names the unique-bare-name fallback must never resolve: they
#: are overwhelmingly builtin container/file operations (``events.append``
#: is a list, not the one project class that happens to define
#: ``append``), and a misresolution here fabricates call-graph edges.
_FALLBACK_BLOCKLIST = frozenset(
    {
        "append",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        "extend",
        "insert",
        "sort",
        "reverse",
        "count",
        "index",
        "get",
        "items",
        "keys",
        "values",
        "copy",
        "join",
        "split",
        "strip",
        "format",
        "read",
        "write",
        "flush",
        "close",
        "send",
        "recv",
    }
)


@dataclass
class CallSite:
    """One resolved (or deliberately unresolved) call expression."""

    node: ast.Call
    caller: FunctionInfo
    #: Resolved project function or method, if any.
    target: Optional[FunctionInfo] = None
    #: Resolved project class when the call is a constructor.
    target_class: Optional[ClassInfo] = None
    #: Dotted external path (``numpy.zeros``) or bare builtin name.
    external: Optional[str] = None
    #: Attribute name of an unresolved method call (shape matching).
    unresolved_attr: Optional[str] = None

    @property
    def callee(self) -> Optional[FunctionInfo]:
        """The function the engines should descend into (``__init__`` for
        constructor calls)."""
        if self.target is not None:
            return self.target
        if self.target_class is not None:
            return self.target_class.methods.get("__init__")
        return None

    @property
    def callee_display(self) -> str:
        if self.target is not None:
            return self.target.display
        if self.target_class is not None:
            return self.target_class.ref
        if self.external is not None:
            return self.external
        return self.unresolved_attr or "<unknown>"


class _FunctionScope:
    """Local name environment of one function: params, annotated or
    constructor-typed locals, nested defs and local classes."""

    def __init__(self, fn: FunctionInfo) -> None:
        self.fn = fn
        self.param_types: Dict[str, str] = dict(fn.param_annotations)
        self.local_types: Dict[str, str] = {}
        self.nested_defs: Set[str] = set()
        self.local_classes: Set[str] = set()
        self.lambda_locals: Set[str] = set()
        self.assigned: Set[str] = set(fn.params)
        for stmt in fn.node.body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if node is not fn.node:
                        self.nested_defs.add(node.name)
                elif isinstance(node, ast.ClassDef):
                    self.local_classes.add(node.name)
                elif isinstance(node, ast.Assign):
                    ctor = _ctor_type(node.value)
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.assigned.add(target.id)
                            if isinstance(node.value, ast.Lambda):
                                self.lambda_locals.add(target.id)
                            if ctor is not None:
                                self.local_types.setdefault(target.id, ctor)
                elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    self.assigned.add(node.target.id)
                    annotated = _annotation_name(node.annotation)
                    if annotated is not None:
                        self.local_types.setdefault(node.target.id, annotated)

    def type_of(self, name: str) -> Optional[str]:
        return self.local_types.get(name) or self.param_types.get(name)


@dataclass
class CallGraph:
    """All resolved call sites, indexed by caller."""

    project: FlowProject
    #: Caller ref -> call sites in source order.
    sites: Dict[str, List[CallSite]] = field(default_factory=dict)
    #: Caller ref -> scope (reused by the dataflow engine).
    scopes: Dict[str, _FunctionScope] = field(default_factory=dict)

    def sites_of(self, fn: FunctionInfo) -> List[CallSite]:
        return self.sites.get(fn.ref, [])

    def scope_of(self, fn: FunctionInfo) -> _FunctionScope:
        return self.scopes[fn.ref]

    def edges(self) -> List[Tuple[str, str]]:
        """Sorted unique ``(caller, callee)`` reference pairs."""
        pairs: Set[Tuple[str, str]] = set()
        for ref, sites in self.sites.items():
            for site in sites:
                callee = site.callee
                if callee is not None:
                    pairs.add((ref, callee.ref))
        return sorted(pairs)

    def to_payload(self) -> Dict[str, object]:
        """JSON payload of the graph (the ``--callgraph-out`` dump)."""
        unresolved: Dict[str, int] = {}
        external: Dict[str, int] = {}
        for sites in self.sites.values():
            for site in sites:
                if site.external is not None:
                    external[site.external] = external.get(site.external, 0) + 1
                elif site.callee is None and site.unresolved_attr:
                    key = site.unresolved_attr
                    unresolved[key] = unresolved.get(key, 0) + 1
        return {
            "version": 1,
            "functions": sorted(self.sites),
            "edges": [list(edge) for edge in self.edges()],
            "external_calls": dict(sorted(external.items())),
            "unresolved_calls": dict(sorted(unresolved.items())),
        }


def _attribute_chain(node: ast.AST) -> Optional[List[str]]:
    """``self.wir_db.publish`` -> ``["self", "wir_db", "publish"]``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


def _resolve_dotted(
    project: FlowProject, module: ModuleInfo, dotted: str
) -> Tuple[Optional[Union[FunctionInfo, ClassInfo]], Optional[str]]:
    """Resolve an import-qualified dotted path to a project symbol, or
    classify it as external."""
    resolved = project.resolve_member(dotted)
    if resolved is not None:
        return resolved, None
    return None, dotted


def _resolve_call(
    project: FlowProject,
    module: ModuleInfo,
    fn: FunctionInfo,
    scope: _FunctionScope,
    node: ast.Call,
) -> CallSite:
    site = CallSite(node=node, caller=fn)
    func = node.func

    if isinstance(func, ast.Name):
        name = func.id
        if name in scope.nested_defs or name in scope.local_classes:
            return site  # local callable; taint rules handle references
        if name not in scope.assigned:
            # Same-module function?
            if name in module.functions and module.functions[name].class_name is None:
                site.target = module.functions[name]
                return site
            if name in module.classes:
                site.target_class = module.classes[name]
                return site
            imported = module.import_members.get(name)
            if imported is not None:
                resolved, external = _resolve_dotted(project, module, imported)
                if isinstance(resolved, FunctionInfo):
                    site.target = resolved
                elif isinstance(resolved, ClassInfo):
                    site.target_class = resolved
                else:
                    site.external = external
                return site
            # Builtin / global unknown name.
            site.external = name
            return site
        return site  # call on a local variable: unresolved

    if isinstance(func, ast.Attribute):
        chain = _attribute_chain(func)
        if chain is None:
            site.unresolved_attr = func.attr
            return site
        head, rest = chain[0], chain[1:]

        # Import-qualified: np.zeros, rng_module.ensure_rng, pkg.mod.fn.
        if head not in scope.assigned and head != "self":
            dotted: Optional[str] = None
            if head in module.import_members:
                dotted = ".".join([module.import_members[head]] + rest)
            elif head in module.import_modules:
                dotted = ".".join([module.import_modules[head]] + rest)
            if dotted is not None:
                resolved, external = _resolve_dotted(project, module, dotted)
                if isinstance(resolved, FunctionInfo):
                    site.target = resolved
                elif isinstance(resolved, ClassInfo):
                    site.target_class = resolved
                else:
                    site.external = external
                return site

        # self.method() / self.attr.method().
        if head == "self" and fn.class_name is not None:
            cls = module.classes.get(fn.class_name)
            if cls is not None:
                if len(rest) == 1:
                    method = project.class_method(cls, rest[0])
                    if method is not None:
                        site.target = method
                        return site
                elif len(rest) == 2:
                    attr_type = cls.attr_types.get(rest[0])
                    if attr_type is not None:
                        attr_cls = project.resolve_class(attr_type)
                        if attr_cls is not None:
                            method = project.class_method(attr_cls, rest[1])
                            if method is not None:
                                site.target = method
                                return site

        # Typed local / parameter: rng.integers() where rng: Generator.
        if len(rest) == 1:
            local_type = scope.type_of(head)
            if local_type is not None:
                local_cls = project.resolve_class(local_type)
                if local_cls is not None:
                    method = project.class_method(local_cls, rest[0])
                    if method is not None:
                        site.target = method
                        return site

        # Conservative dynamic-dispatch fallback: unique bare name.
        attr_name = rest[-1] if rest else func.attr
        if attr_name not in _FALLBACK_BLOCKLIST:
            unique = project.unique_function_named(attr_name)
            if unique is not None and unique.class_name is not None:
                site.target = unique
                return site

        site.unresolved_attr = func.attr
        return site

    return site  # calls on arbitrary expressions stay unresolved


def build_callgraph(project: FlowProject) -> CallGraph:
    """Resolve every call site of every project function."""
    graph = CallGraph(project=project)
    for fn in project.functions():
        module = project.by_path[fn.path]
        scope = _FunctionScope(fn)
        graph.scopes[fn.ref] = scope
        sites: List[CallSite] = []
        for stmt in fn.node.body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if isinstance(node, ast.Call):
                    sites.append(_resolve_call(project, module, fn, scope, node))
        graph.sites[fn.ref] = sites
        # Nested defs get their own FunctionInfo?  They are not module
        # functions; calls inside them belong to the enclosing function's
        # site list (ast.walk above descends into them via statements).
    return graph
