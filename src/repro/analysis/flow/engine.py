"""Fixpoint dataflow engines of the flow layer.

Two engines share the call graph:

* :func:`run_taint` -- a forward taint propagation parameterized by a
  :class:`TaintSpec` (what introduces taint, what passes it through, what
  counts as a sink).  Each function is analyzed flow-insensitively against
  its callees' :class:`~repro.analysis.flow.summaries.TaintSummary`, and a
  worklist iterates until the summaries stabilize -- so taint laundered
  through any chain of helpers still reaches its sink, at cost linear in
  call-graph size.  Sink crossings are reported at the *frontier*: the
  call expression where a tainted value meets a sink-reaching path, which
  is also where a suppression comment belongs.
* :func:`run_purity` -- transitive allocation-freedom for the hot-path
  rules: a local impurity scan per function (mirroring HOT001-003's
  definition of impure: Python loops, ``list``/``.tolist`` copies,
  comprehensions, numpy allocators) followed by a monotone closure over
  callees.  Locally suppressed impurities are excluded from summaries, so
  a justified ``# repro: noqa[HOT003]`` does not re-surface at every call
  site; ``@hot_path``-decorated functions are trusted leaves.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.flow.callgraph import CallGraph, CallSite, _FunctionScope
from repro.analysis.flow.summaries import (
    AV,
    CLEAN,
    EMPTY_TAINT,
    PuritySummary,
    SinkEvent,
    TaintSummary,
    node_location,
)
from repro.analysis.flow.symbols import FunctionInfo, ModuleInfo
from repro.analysis.rules_hotloop import _NP_ALLOCATORS

__all__ = ["TaintSpec", "TaintResult", "run_taint", "run_purity"]

#: Hard cap on fixpoint rounds (well above any real call-chain depth).
_MAX_ROUNDS = 12


class TaintSpec:
    """What one taint analysis considers a source, a conduit, and a sink.

    Subclasses override the hooks; every default is the empty analysis.
    """

    #: Rule family the events belong to (used in diagnostics only).
    family = "FLOW"

    def call_source(self, site: CallSite) -> Optional[str]:
        """Taint-origin description when this call *creates* taint."""
        return None

    def expr_source(
        self, node: ast.expr, scope: _FunctionScope, module: ModuleInfo
    ) -> Optional[str]:
        """Taint-origin description for a non-call expression (lambdas,
        references to locally defined functions, ...)."""
        return None

    def passthrough_external(self, external: str) -> bool:
        """True when an external callable returns taint given tainted
        arguments (``functools.partial``, tuple constructors, ...)."""
        return False

    def sink_crossings(
        self, site: CallSite, module: ModuleInfo
    ) -> List[Tuple[str, ast.expr]]:
        """``(sink description, crossing expression)`` pairs for a call
        that is itself a sink boundary."""
        return []


@dataclass
class TaintResult:
    """Converged summaries plus the deduplicated sink events."""

    summaries: Dict[str, TaintSummary] = field(default_factory=dict)
    events: List[SinkEvent] = field(default_factory=list)

    def events_for(self, path: str) -> List[SinkEvent]:
        return [event for event in self.events if event.path == path]


class _FunctionTaint:
    """One flow-insensitive pass over a single function body.

    Two sweeps over the statements in source order: the first populates
    the local environment (so a name used above its def-site in loop
    bodies still picks up taint), the second records sink events.
    """

    def __init__(
        self,
        graph: CallGraph,
        spec: TaintSpec,
        fn: FunctionInfo,
        summaries: Dict[str, TaintSummary],
    ) -> None:
        self.graph = graph
        self.spec = spec
        self.fn = fn
        self.module = graph.project.by_path[fn.path]
        self.scope = graph.scope_of(fn)
        self.summaries = summaries
        self.sites = {id(site.node): site for site in graph.sites_of(fn)}
        self.env: Dict[str, AV] = {
            name: AV(params=frozenset({index}))
            for index, name in enumerate(fn.params)
        }
        self.ret: AV = CLEAN
        self.sink_params: Set[int] = set()
        self.events: List[SinkEvent] = []
        self._record = False

    def run(self) -> Tuple[TaintSummary, List[SinkEvent]]:
        self._record = False
        self._exec(self.fn.node.body)
        self._record = True
        self._exec(self.fn.node.body)
        summary = TaintSummary(
            return_origin=self.ret.origin,
            return_params=frozenset(self.ret.params),
            sink_params=frozenset(self.sink_params),
        )
        return summary, self.events

    # -- statements ---------------------------------------------------
    def _exec(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # nested callables run elsewhere
            if isinstance(stmt, ast.Assign):
                av = self._eval(stmt.value)
                for target in stmt.targets:
                    self._assign(target, av)
            elif isinstance(stmt, ast.AnnAssign):
                if stmt.value is not None:
                    self._assign(stmt.target, self._eval(stmt.value))
            elif isinstance(stmt, ast.AugAssign):
                av = self._eval(stmt.value).merged(self._eval(stmt.target))
                self._assign(stmt.target, av)
            elif isinstance(stmt, ast.Return):
                if stmt.value is not None:
                    self.ret = self.ret.merged(self._eval(stmt.value))
            elif isinstance(stmt, ast.Expr):
                self._eval(stmt.value)
            elif isinstance(stmt, ast.If):
                self._eval(stmt.test)
                self._exec(stmt.body)
                self._exec(stmt.orelse)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._assign(stmt.target, self._eval(stmt.iter))
                self._exec(stmt.body)
                self._exec(stmt.orelse)
            elif isinstance(stmt, ast.While):
                self._eval(stmt.test)
                self._exec(stmt.body)
                self._exec(stmt.orelse)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    av = self._eval(item.context_expr)
                    if item.optional_vars is not None:
                        self._assign(item.optional_vars, av)
                self._exec(stmt.body)
            elif isinstance(stmt, ast.Try):
                self._exec(stmt.body)
                for handler in stmt.handlers:
                    self._exec(handler.body)
                self._exec(stmt.orelse)
                self._exec(stmt.finalbody)
            elif isinstance(stmt, ast.Raise):
                if stmt.exc is not None:
                    self._eval(stmt.exc)
            elif isinstance(stmt, ast.Assert):
                self._eval(stmt.test)
            elif isinstance(
                stmt,
                (
                    ast.Pass,
                    ast.Break,
                    ast.Continue,
                    ast.Global,
                    ast.Nonlocal,
                    ast.Import,
                    ast.ImportFrom,
                    ast.Delete,
                ),
            ):
                continue
            else:  # match statements and future node types
                self._generic(stmt)

    def _generic(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._eval(child)
            elif isinstance(child, ast.stmt):
                self._exec([child])
            else:
                self._generic(child)

    def _assign(self, target: ast.expr, av: AV) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = self.env.get(target.id, CLEAN).merged(av)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, av)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, av)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            # Intra-method only: ``self.x`` taint does not cross methods.
            key = f"self.{target.attr}"
            self.env[key] = self.env.get(key, CLEAN).merged(av)

    # -- expressions --------------------------------------------------
    def _eval(self, node: Optional[ast.expr]) -> AV:
        if node is None:
            return CLEAN
        if isinstance(node, ast.Name):
            av = self.env.get(node.id, CLEAN)
            origin = self.spec.expr_source(node, self.scope, self.module)
            if origin is not None:
                av = av.merged(AV(origin=origin))
            return av
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                attr = self.env.get(f"self.{node.attr}")
                if attr is not None:
                    return attr
            return self._eval(node.value)
        if isinstance(node, ast.Lambda):
            origin = self.spec.expr_source(node, self.scope, self.module)
            return AV(origin=origin) if origin is not None else CLEAN
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return self._merge_all(node.elts)
        if isinstance(node, ast.Dict):
            return self._merge_all(list(node.keys) + list(node.values))
        if isinstance(node, ast.BinOp):
            return self._eval(node.left).merged(self._eval(node.right))
        if isinstance(node, ast.BoolOp):
            return self._merge_all(node.values)
        if isinstance(node, ast.Compare):
            return self._merge_all([node.left] + list(node.comparators))
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return self._eval(node.body).merged(self._eval(node.orelse))
        if isinstance(node, ast.Subscript):
            self._eval_slice(node.slice)
            return self._eval(node.value)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.Await):
            return self._eval(node.value)
        if isinstance(node, ast.NamedExpr):
            av = self._eval(node.value)
            self._assign(node.target, av)
            return av
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            av = CLEAN
            for generator in node.generators:
                av = av.merged(self._eval(generator.iter))
            if isinstance(node, ast.DictComp):
                return av.merged(self._eval(node.key)).merged(
                    self._eval(node.value)
                )
            return av.merged(self._eval(node.elt))
        return CLEAN

    def _eval_slice(self, node: ast.expr) -> None:
        if isinstance(node, ast.Slice):
            self._eval(node.lower)
            self._eval(node.upper)
            self._eval(node.step)
        else:
            self._eval(node)

    def _merge_all(self, nodes: Sequence[Optional[ast.expr]]) -> AV:
        av = CLEAN
        for child in nodes:
            if child is not None:
                av = av.merged(self._eval(child))
        return av

    def _eval_call(self, node: ast.Call) -> AV:
        positional: List[AV] = []
        star = CLEAN
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                star = star.merged(self._eval(arg.value))
            else:
                positional.append(self._eval(arg))
        keywords: List[Tuple[Optional[str], AV]] = [
            (kw.arg, self._eval(kw.value)) for kw in node.keywords
        ]
        base = (
            self._eval(node.func.value)
            if isinstance(node.func, ast.Attribute)
            else CLEAN
        )

        result = CLEAN
        site = self.sites.get(id(node))
        if site is not None:
            origin = self.spec.call_source(site)
            if origin is not None:
                result = result.merged(AV(origin=origin))
            for sink_label, crossing in self.spec.sink_crossings(
                site, self.module
            ):
                self._sink(self._eval(crossing), sink_label, node)
            callee = site.callee
            if callee is not None and not callee.is_stub:
                summary = self.summaries.get(callee.ref, EMPTY_TAINT)
                mapping = self._map_args(callee, positional, keywords, star)
                for index, av in mapping.items():
                    if index in summary.sink_params:
                        self._sink(av, callee.display, node)
                if summary.return_origin is not None:
                    result = result.merged(AV(origin=summary.return_origin))
                for index in summary.return_params:
                    mapped = mapping.get(index)
                    if mapped is not None:
                        result = result.merged(mapped)
            elif site.external is not None and self.spec.passthrough_external(
                site.external
            ):
                for av in positional:
                    result = result.merged(av)
                for _, av in keywords:
                    result = result.merged(av)
                result = result.merged(star)
        # A method-call result carries its receiver's taint
        # (``rng.integers(...)``, ``partial_obj.func``).
        return result.merged(base)

    def _map_args(
        self,
        callee: FunctionInfo,
        positional: Sequence[AV],
        keywords: Sequence[Tuple[Optional[str], AV]],
        star: AV,
    ) -> Dict[int, AV]:
        mapping: Dict[int, AV] = {}

        def merge(index: int, av: AV) -> None:
            mapping[index] = mapping.get(index, CLEAN).merged(av)

        for index, av in enumerate(positional):
            if index < len(callee.params):
                merge(index, av)
        for name, av in keywords:
            if name is None:  # **kwargs: may land anywhere
                for index in range(len(callee.params)):
                    merge(index, av)
            else:
                index = callee.param_index(name)
                if index is not None:
                    merge(index, av)
        if star is not CLEAN:
            for index in range(len(callee.params)):
                merge(index, star)
        return mapping

    def _sink(self, av: AV, sink: str, node: ast.Call) -> None:
        self.sink_params.update(av.params)
        if av.origin is not None and self._record:
            line, col = node_location(node)
            self.events.append(
                SinkEvent(
                    path=self.fn.path,
                    line=line,
                    col=col,
                    origin=av.origin,
                    sink=sink,
                )
            )


def run_taint(graph: CallGraph, spec: TaintSpec) -> TaintResult:
    """Iterate per-function taint analyses to a summary fixpoint."""
    functions = [fn for fn in graph.project.functions() if not fn.is_stub]
    summaries: Dict[str, TaintSummary] = {fn.ref: EMPTY_TAINT for fn in functions}
    events_by_fn: Dict[str, List[SinkEvent]] = {}
    for _ in range(_MAX_ROUNDS):
        changed = False
        for fn in functions:
            summary, events = _FunctionTaint(graph, spec, fn, summaries).run()
            merged = summaries[fn.ref].merged(summary)
            if merged != summaries[fn.ref]:
                summaries[fn.ref] = merged
                changed = True
            events_by_fn[fn.ref] = events
        if not changed:
            break

    seen: Set[Tuple[str, int, int, str, str]] = set()
    deduped: List[SinkEvent] = []
    for fn in functions:
        for event in events_by_fn.get(fn.ref, []):
            key = (event.path, event.line, event.col, event.origin, event.sink)
            if key not in seen:
                seen.add(key)
                deduped.append(event)
    deduped.sort(key=lambda e: (e.path, e.line, e.col, e.sink))
    return TaintResult(summaries=summaries, events=deduped)


# ----------------------------------------------------------------------
# Transitive purity.
# ----------------------------------------------------------------------
#: Suppressing any of these rules on an impurity's line also removes it
#: from the function's purity summary (the waiver travels up the graph).
_PURITY_WAIVER_RULES = ("HOT001", "HOT002", "HOT003", "FLOW-HOT")


def _walk_own_body(fn: FunctionInfo) -> List[ast.AST]:
    """Every node of the function body, nested callables excluded."""
    out: List[ast.AST] = []
    stack: List[ast.AST] = list(fn.node.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        out.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return out


def _local_impurity(
    graph: CallGraph, fn: FunctionInfo, module: ModuleInfo
) -> Optional[str]:
    """First HOT-style impurity in the function's own body, or ``None``.

    Mirrors HOT001-003: Python loops, ``list(...)``/``.tolist()`` copies,
    comprehensions, numpy allocator calls.  Impurities on lines covered by
    a justified suppression naming a purity rule are excluded, so audited
    sites do not re-surface at their callers.
    """
    suppressed = module.suppressed_lines(*_PURITY_WAIVER_RULES)
    externals = {
        id(site.node): site.external
        for site in graph.sites_of(fn)
        if site.external is not None
    }
    worst: Optional[Tuple[int, int, str]] = None
    for node in _walk_own_body(fn):
        line, col = node_location(node)
        if line in suppressed:
            continue
        description: Optional[str] = None
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            description = "runs a Python-level loop"
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            description = "allocates via a comprehension"
        elif isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id == "list":
                description = "copies via `list(...)`"
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "tolist"
            ):
                description = "copies via `.tolist()`"
            else:
                external = externals.get(id(node))
                if external is not None:
                    parts = external.split(".")
                    if (
                        len(parts) == 2
                        and parts[0] == "numpy"
                        and parts[1] in _NP_ALLOCATORS
                    ):
                        description = f"allocates via `np.{parts[1]}(...)`"
        if description is not None:
            candidate = (line, col, description)
            if worst is None or candidate < worst:
                worst = candidate  # earliest in the file, deterministic
    return worst[2] if worst is not None else None


def run_purity(graph: CallGraph) -> Dict[str, PuritySummary]:
    """Transitive allocation-freedom of every project function.

    Monotone closure: once a function is impure it stays impure, and its
    description is fixed at first discovery (so messages are stable).
    ``@hot_path``-decorated functions and Protocol/ABC stubs are pure
    leaves by decree.
    """
    project = graph.project
    impurity: Dict[str, Optional[str]] = {}
    for fn in project.functions():
        if fn.is_hot_path_allowlisted or fn.is_stub:
            impurity[fn.ref] = None
            continue
        impurity[fn.ref] = _local_impurity(graph, fn, project.by_path[fn.path])

    for _ in range(_MAX_ROUNDS * 4):  # deep chains are cheap to close
        changed = False
        for fn in project.functions():
            if impurity.get(fn.ref) is not None or fn.is_hot_path_allowlisted:
                continue
            for site in graph.sites_of(fn):
                callee = site.callee
                if callee is None or callee.is_hot_path_allowlisted:
                    continue
                inner = impurity.get(callee.ref)
                if inner is not None:
                    impurity[fn.ref] = (
                        f"calls `{callee.display}`, which {inner}"
                    )
                    changed = True
                    break
        if not changed:
            break
    return {ref: PuritySummary(impurity=desc) for ref, desc in impurity.items()}
