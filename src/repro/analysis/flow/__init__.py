"""Interprocedural dataflow layer of :mod:`repro.analysis`.

The PR-8 rules are single-file AST pattern matches; this subpackage grows
them into a whole-program analysis so the same invariants hold *across*
call boundaries:

* :mod:`repro.analysis.flow.symbols` -- project-wide symbol table: one
  :class:`~repro.analysis.flow.symbols.ModuleInfo` per file (functions,
  classes, imports, inferred attribute types), cached by content hash so
  repeated ``repro lint`` runs re-parse only edited files.
* :mod:`repro.analysis.flow.callgraph` -- call-site resolution over the
  symbol table: imported members, ``self`` methods, annotated parameters,
  constructor-assigned attributes, and a conservative unique-name fallback
  for dynamic dispatch.
* :mod:`repro.analysis.flow.engine` -- a small fixpoint dataflow engine:
  forward taint propagation over assignments/calls/returns and a
  transitive purity analysis, both built on per-function summaries so the
  whole-program pass is linear in call-graph size.
* :mod:`repro.analysis.flow.summaries` -- the summary dataclasses the
  engine computes and the rule families consume.

The four rule families (registered by importing their modules, exactly
like the single-file rules):

* ``FLOW-RNG`` -- seed-flow taint: entropy-seeded generators must not
  reach the simulation core;
* ``FLOW-HOT`` -- transitive hot-loop purity: the profiled stages must be
  allocation-free through their entire callee closure;
* ``FLOW-PKL`` -- pool-submission pickle-safety across wrappers and
  helper returns;
* ``FLOW-MUT`` -- module-global mutation reachable from worker entry
  points.
"""

from repro.analysis.flow.callgraph import CallGraph, CallSite
from repro.analysis.flow.symbols import (
    FlowProject,
    FunctionInfo,
    ModuleInfo,
    cache_counters,
)

__all__ = [
    "CallGraph",
    "CallSite",
    "FlowProject",
    "FunctionInfo",
    "ModuleInfo",
    "cache_counters",
]
