"""Project-wide symbol table for the interprocedural analyses.

One :class:`ModuleInfo` per file -- its functions and classes (with
enough type information to resolve method calls: parameter annotations,
constructor-assigned ``self.*`` attributes), its import maps, and its
suppression table (so justified single-file suppressions also excuse a
function from the transitive analyses).

Building a :class:`ModuleInfo` is the expensive per-file step (a parse
plus several AST walks), so results are cached in a module-level store
keyed by display path and invalidated by content hash: a ``repro lint``
run after editing one file re-parses exactly that file.  The fixpoint
recombination over summaries is cheap and recomputed every run.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.framework import Suppression, parse_suppressions

__all__ = [
    "ClassInfo",
    "FlowProject",
    "FunctionInfo",
    "ModuleInfo",
    "cache_counters",
    "reset_cache",
]

#: Decorator name marking a function as audited allocation-free: the
#: transitive purity analysis trusts it as a leaf instead of descending.
HOT_PATH_DECORATOR = "hot_path"

#: Longest dotted suffix registered for module-name resolution.
_MAX_SUFFIX_SEGMENTS = 6


def _annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    """Best-effort dotted type name of an annotation expression.

    Unwraps ``Optional[X]`` / ``Final[X]`` / string annotations down to the
    innermost dotted name; anything structurally richer (unions of two real
    types, callables, generics over containers) comes back ``None`` and the
    call site stays unresolved -- the conservative direction.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        parts: List[str] = []
        cur: ast.AST = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if isinstance(cur, ast.Name):
            parts.append(cur.id)
            return ".".join(reversed(parts))
        return None
    if isinstance(node, ast.Subscript):
        head = _annotation_name(node.value)
        if head in {"Optional", "Final", "typing.Optional", "typing.Final"}:
            return _annotation_name(node.slice)
        return None
    return None


def _decorator_names(node: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> Tuple[str, ...]:
    """Terminal name of every decorator (``hot_path`` for ``m.hot_path``)."""
    names: List[str] = []
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Attribute):
            names.append(target.attr)
        elif isinstance(target, ast.Name):
            names.append(target.id)
    return tuple(names)


def _is_stub_body(body: Sequence[ast.stmt]) -> bool:
    """True for Protocol/ABC-style bodies: docstring, ``...``, ``pass``,
    ``raise NotImplementedError``."""
    for stmt in body:
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring / ellipsis
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Raise):
            exc = stmt.exc
            target = exc.func if isinstance(exc, ast.Call) else exc
            if isinstance(target, ast.Name) and target.id == "NotImplementedError":
                continue
        return False
    return True


@dataclass
class FunctionInfo:
    """One function or method of the project."""

    #: Dotted module name (``repro.utils.rng``).
    module: str
    #: Module-local qualified name (``Class.meth`` or ``func``).
    qualname: str
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    #: Display path of the defining file (what findings print).
    path: str
    #: Package-relative path (``repro/utils/rng.py``) for path-scoped logic.
    module_path: str
    class_name: Optional[str]
    decorators: Tuple[str, ...]
    #: Parameter names, ``self``/``cls`` excluded for methods, in call
    #: mapping order (positional-or-keyword then keyword-only).
    params: Tuple[str, ...]
    #: Parameter name -> dotted annotation type name (best effort).
    param_annotations: Dict[str, str]
    #: Protocol/ABC stub body (treated as pure and taint-free).
    is_stub: bool

    @property
    def ref(self) -> str:
        """Project-unique key (``module.qualname``)."""
        return f"{self.module}.{self.qualname}"

    @property
    def display(self) -> str:
        """Human name used in finding messages."""
        return f"{self.module}.{self.qualname}"

    @property
    def is_hot_path_allowlisted(self) -> bool:
        return HOT_PATH_DECORATOR in self.decorators

    def param_index(self, name: str) -> Optional[int]:
        try:
            return self.params.index(name)
        except ValueError:
            return None


@dataclass
class ClassInfo:
    """One class of the project, with inferred attribute types."""

    module: str
    name: str
    node: ast.ClassDef
    #: Terminal names of the base classes (resolution happens lazily).
    bases: Tuple[str, ...]
    #: Method name -> FunctionInfo.
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.attr`` -> dotted type name, from ``__init__`` assignments of
    #: resolvable constructor calls / annotated parameters.
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: True when the class subclasses ``Protocol``.
    is_protocol: bool = False

    @property
    def ref(self) -> str:
        return f"{self.module}.{self.name}"


@dataclass
class ModuleInfo:
    """Everything the flow layer knows about one file."""

    #: Dotted module name derived from the file path (``repro.obs.clock``).
    name: str
    #: Display path as handed to the linter.
    path: str
    #: Package-relative posix path (``repro/obs/clock.py``).
    module_path: str
    tree: ast.Module
    #: Bound name -> imported module path (``np`` -> ``numpy``).
    import_modules: Dict[str, str]
    #: Bound name -> fully qualified imported member.
    import_members: Dict[str, str]
    #: Module-local qualname -> FunctionInfo (methods included).
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: Module-global names bound to lambdas (unpicklable by reference).
    lambda_globals: Set[str] = field(default_factory=set)
    #: Module-global names bound to mutable literals (registry candidates).
    mutable_globals: Set[str] = field(default_factory=set)
    #: Parsed ``# repro: noqa[...]`` table of the file.
    suppressions: List[Suppression] = field(default_factory=list)

    def suppressed_lines(self, *rule_ids: str) -> Set[int]:
        """Lines a justified suppression naming any of ``rule_ids`` covers."""
        lines: Set[int] = set()
        for suppression in self.suppressions:
            if suppression.justification and any(
                rule in suppression.rules for rule in rule_ids
            ):
                lines.add(suppression.applies_to)
        return lines


# ----------------------------------------------------------------------
# Per-file cache.
# ----------------------------------------------------------------------
_MODULE_CACHE: Dict[str, Tuple[str, ModuleInfo]] = {}
_CACHE_COUNTERS = {"builds": 0, "hits": 0}


def cache_counters() -> Dict[str, int]:
    """Copy of the per-file cache counters (for the invalidation tests)."""
    return dict(_CACHE_COUNTERS)


def reset_cache() -> None:
    """Drop the per-file cache and zero the counters (test isolation)."""
    _MODULE_CACHE.clear()
    _CACHE_COUNTERS["builds"] = 0
    _CACHE_COUNTERS["hits"] = 0


def _module_name_from_path(path: Union[str, Path]) -> Tuple[str, ...]:
    """Dotted-name segments of ``path`` (``__init__.py`` -> the package).

    Derived from the package-relative path, so ``src/repro/utils/rng.py``
    and an installed ``repro/utils/rng.py`` both name ``repro.utils.rng``.
    """
    parts = list(Path(_module_relpath(path)).with_suffix("").parts)
    while parts and parts[0] in {"/", "\\"}:
        parts.pop(0)
    if parts and parts[-1] == "__init__":
        parts.pop()
    cleaned = [part for part in parts if part not in {"", ".", ".."}]
    return tuple(cleaned[-_MAX_SUFFIX_SEGMENTS:]) if cleaned else ("<module>",)


def _module_relpath(path: Union[str, Path]) -> str:
    """``repro/...``-relative posix path (mirrors the framework helper)."""
    parts = Path(path).as_posix().split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return "/".join(parts)


def _collect_imports(tree: ast.Module) -> Tuple[Dict[str, str], Dict[str, str]]:
    """Import maps over the whole tree (function-level imports included)."""
    modules: Dict[str, str] = {}
    members: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    modules[alias.asname] = alias.name
                else:
                    top = alias.name.split(".")[0]
                    modules[top] = top
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                members[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return modules, members


def _function_params(
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef], is_method: bool
) -> Tuple[Tuple[str, ...], Dict[str, str]]:
    args = node.args
    ordered = list(args.posonlyargs) + list(args.args)
    if is_method and ordered and ordered[0].arg in {"self", "cls"}:
        ordered = ordered[1:]
    ordered += list(args.kwonlyargs)
    names = tuple(a.arg for a in ordered)
    annotations: Dict[str, str] = {}
    for a in ordered:
        dotted = _annotation_name(a.annotation)
        if dotted is not None:
            annotations[a.arg] = dotted
    return names, annotations


def _build_function(
    module: "ModuleInfo",
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
    class_name: Optional[str],
) -> FunctionInfo:
    params, annotations = _function_params(node, is_method=class_name is not None)
    qualname = f"{class_name}.{node.name}" if class_name else node.name
    return FunctionInfo(
        module=module.name,
        qualname=qualname,
        node=node,
        path=module.path,
        module_path=module.module_path,
        class_name=class_name,
        decorators=_decorator_names(node),
        params=params,
        param_annotations=annotations,
        is_stub=_is_stub_body(node.body),
    )


def _ctor_type(value: ast.AST) -> Optional[str]:
    """Dotted name of a plausible constructor call (``WIRDatabase(...)``)."""
    if not isinstance(value, ast.Call):
        return None
    name = _annotation_name(value.func)
    if name is None:
        return None
    terminal = name.split(".")[-1]
    # Constructor heuristic: CapWord terminal name.
    if terminal[:1].isupper():
        return name
    return None


def _class_attr_types(info: ClassInfo) -> Dict[str, str]:
    """Infer ``self.attr`` types from ``__init__`` (and ``__post_init__``).

    Two sources, in priority order: an annotated assignment or a
    constructor-call assignment (``self.x = WIRDatabase(...)``), and a
    plain parameter forward (``self.x = cluster``) typed by the
    parameter's annotation.
    """
    types: Dict[str, str] = {}
    for init_name in ("__init__", "__post_init__"):
        init = info.methods.get(init_name)
        if init is None:
            continue
        annotations = init.param_annotations
        for stmt in ast.walk(init.node):
            targets: List[ast.expr] = []
            value: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
                annotated = _annotation_name(stmt.annotation)
                for target in targets:
                    if (
                        annotated is not None
                        and isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        types.setdefault(target.attr, annotated)
                value = stmt.value
            if value is None:
                continue
            inferred = _ctor_type(value)
            if inferred is None and isinstance(value, ast.Name):
                inferred = annotations.get(value.id)
            if inferred is None:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    types.setdefault(target.attr, inferred)
    return types


def _build_module(path: str, source: str, tree: ast.Module) -> ModuleInfo:
    modules, members = _collect_imports(tree)
    info = ModuleInfo(
        name=".".join(_module_name_from_path(path)),
        path=path,
        module_path=_module_relpath(path),
        tree=tree,
        import_modules=modules,
        import_members=members,
        suppressions=parse_suppressions(source),
    )
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = _build_function(info, node, None)
            info.functions[fn.qualname] = fn
        elif isinstance(node, ast.ClassDef):
            bases = tuple(
                name
                for name in (_annotation_name(base) for base in node.bases)
                if name is not None
            )
            cls = ClassInfo(
                module=info.name,
                name=node.name,
                node=node,
                bases=tuple(base.split(".")[-1] for base in bases),
                is_protocol=any(b.split(".")[-1] == "Protocol" for b in bases),
            )
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    fn = _build_function(info, item, node.name)
                    cls.methods[item.name] = fn
                    info.functions[fn.qualname] = fn
            cls.attr_types = _class_attr_types(cls)
            info.classes[node.name] = cls
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            value = node.value
            if value is None:
                continue
            is_lambda = isinstance(value, ast.Lambda)
            is_mutable = isinstance(value, (ast.Dict, ast.List, ast.Set)) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in {"dict", "list", "set"}
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    if is_lambda:
                        info.lambda_globals.add(target.id)
                    if is_mutable:
                        info.mutable_globals.add(target.id)
    return info


def load_module(path: str, source: str) -> Optional[ModuleInfo]:
    """Parse + index ``source``, via the content-hash cache.

    Returns ``None`` for files the parser rejects (the per-file drivers
    already report those as ``SYN001``).
    """
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    cached = _MODULE_CACHE.get(path)
    if cached is not None and cached[0] == digest:
        _CACHE_COUNTERS["hits"] += 1  # repro: noqa[SPN002] -- process-local parse cache, not a registry; a worker copy merely re-parses, it cannot diverge results
        return cached[1]
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return None
    _CACHE_COUNTERS["builds"] += 1  # repro: noqa[SPN002] -- process-local parse cache, not a registry; a worker copy merely re-parses, it cannot diverge results
    info = _build_module(path, source, tree)
    _MODULE_CACHE[path] = (digest, info)  # repro: noqa[SPN002] -- process-local parse cache, not a registry; a worker copy merely re-parses, it cannot diverge results
    return info


# ----------------------------------------------------------------------
# Project index.
# ----------------------------------------------------------------------
class FlowProject:
    """The whole-program view the flow rules analyze.

    Built once per ``lint_paths`` invocation over every file in the run;
    per-file symbol tables come from the content-hash cache, the call
    graph and the analysis results are computed lazily and memoized on
    the instance (one fixpoint per rule family per run).
    """

    def __init__(self, files: Sequence[Tuple[str, str]]) -> None:
        #: Modules in deterministic (path-sorted) order.
        self.modules: List[ModuleInfo] = []
        self.by_path: Dict[str, ModuleInfo] = {}
        self._by_suffix: Dict[str, List[ModuleInfo]] = {}
        self._functions_by_name: Dict[str, List[FunctionInfo]] = {}
        self._classes_by_name: Dict[str, List[ClassInfo]] = {}
        self._analyses: Dict[str, object] = {}
        for path, source in sorted(files, key=lambda item: item[0]):
            info = load_module(path, source)
            if info is None:
                continue
            self.modules.append(info)
            self.by_path[path] = info
            segments = _module_name_from_path(path)
            for start in range(len(segments)):
                suffix = ".".join(segments[start:])
                self._by_suffix.setdefault(suffix, []).append(info)
            for fn in info.functions.values():
                self._functions_by_name.setdefault(
                    fn.node.name, []
                ).append(fn)
            for cls in info.classes.values():
                self._classes_by_name.setdefault(cls.name, []).append(cls)

    # -- symbol resolution --------------------------------------------
    def resolve_module(self, dotted: str) -> Optional[ModuleInfo]:
        """Module for an import path, by unambiguous dotted-suffix match."""
        candidates = self._by_suffix.get(dotted)
        if candidates is not None and len(candidates) == 1:
            return candidates[0]
        return None

    def resolve_member(
        self, dotted: str, depth: int = 0
    ) -> Optional[Union[FunctionInfo, ClassInfo]]:
        """Resolve ``pkg.mod.name`` to a project function or class.

        Follows re-export chains (``from pkg.mod import name`` in an
        ``__init__``) up to a small depth.
        """
        if depth > 4 or "." not in dotted:
            return None
        module_part, member = dotted.rsplit(".", 1)
        module = self.resolve_module(module_part)
        if module is None:
            return None
        if member in module.functions:
            return module.functions[member]
        if member in module.classes:
            return module.classes[member]
        re_export = module.import_members.get(member)
        if re_export is not None:
            return self.resolve_member(re_export, depth + 1)
        return None

    def resolve_class(self, name: str) -> Optional[ClassInfo]:
        """Class by dotted or bare name; bare names must be unambiguous."""
        terminal = name.split(".")[-1]
        if "." in name:
            resolved = self.resolve_member(name)
            if isinstance(resolved, ClassInfo):
                return resolved
        candidates = self._classes_by_name.get(terminal)
        if candidates is not None and len(candidates) == 1:
            return candidates[0]
        return None

    def unique_function_named(self, name: str) -> Optional[FunctionInfo]:
        """Conservative dynamic-dispatch fallback: the *only* def with
        this bare name in the whole project, else ``None``."""
        candidates = self._functions_by_name.get(name)
        if candidates is not None and len(candidates) == 1:
            return candidates[0]
        return None

    def class_method(self, cls: ClassInfo, name: str) -> Optional[FunctionInfo]:
        """Method lookup through the project-visible base-class chain."""
        seen: Set[str] = set()
        queue: List[ClassInfo] = [cls]
        while queue:
            current = queue.pop(0)
            if current.ref in seen:
                continue
            seen.add(current.ref)
            if name in current.methods:
                return current.methods[name]
            for base in current.bases:
                base_cls = self.resolve_class(base)
                if base_cls is not None:
                    queue.append(base_cls)
        return None

    def functions(self) -> List[FunctionInfo]:
        """Every function of the project in deterministic order."""
        out: List[FunctionInfo] = []
        for module in self.modules:
            for qualname in sorted(module.functions):
                out.append(module.functions[qualname])
        return out

    # -- memoized analyses --------------------------------------------
    def analysis(self, key: str, compute):  # type: ignore[no-untyped-def]
        """Memoize ``compute(self)`` under ``key`` for this run."""
        if key not in self._analyses:
            self._analyses[key] = compute(self)
        return self._analyses[key]

    @classmethod
    def from_paths(cls, paths: Sequence[Union[str, Path]]) -> "FlowProject":
        """Project over files on disk (unreadable files are skipped)."""
        files: List[Tuple[str, str]] = []
        for path in paths:
            try:
                files.append(
                    (str(path), Path(path).read_text(encoding="utf-8"))
                )
            except OSError:
                continue
        return cls(files)

    @classmethod
    def single(cls, path: str, source: str) -> "FlowProject":
        """Single-file project (the ``lint_source`` fallback)."""
        return cls([(path, source)])
