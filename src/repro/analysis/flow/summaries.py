"""Per-function summary vocabulary of the dataflow engine.

Summaries are what make the whole-program analyses linear in call-graph
size: each function is analyzed against its *callees' summaries* instead
of being re-analyzed at every call site, and a worklist iterates to a
fixpoint (recursion converges because every summary field is monotone:
origins only appear, param sets only grow).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

__all__ = ["AV", "CLEAN", "SinkEvent", "TaintSummary", "PuritySummary"]


@dataclass(frozen=True)
class AV:
    """Abstract value of the taint lattice.

    ``origin`` is ``None`` for clean values, else a human-readable
    description of the taint source (threaded into finding messages);
    ``params`` holds the caller-parameter indices this value may carry,
    which is how summaries express "flows from parameter *i*".
    """

    origin: Optional[str] = None
    params: FrozenSet[int] = frozenset()

    @property
    def tainted(self) -> bool:
        return self.origin is not None

    def merged(self, other: "AV") -> "AV":
        if other is CLEAN:
            return self
        if self is CLEAN:
            return other
        return AV(
            origin=self.origin if self.origin is not None else other.origin,
            params=self.params | other.params,
        )


#: The bottom element: untainted, parameter-free.
CLEAN = AV()


@dataclass(frozen=True)
class SinkEvent:
    """One tainted value crossing a sink boundary.

    Recorded in the file of the function whose body contains the crossing
    call, which is where the suppression comment belongs: the frontier
    where the taint meets a sink-reaching path.
    """

    #: Display path of the file holding the crossing call.
    path: str
    line: int
    col: int
    #: Description of the taint source (``AV.origin``).
    origin: str
    #: Description of the sink (callee display name).
    sink: str


@dataclass(frozen=True)
class TaintSummary:
    """What a function does with taint, from its callers' point of view."""

    #: Taint-source description when the function can return a tainted
    #: value given clean arguments (``None`` otherwise).
    return_origin: Optional[str] = None
    #: Parameter indices that may flow into the return value.
    return_params: FrozenSet[int] = frozenset()
    #: Parameter indices that may (transitively) reach a sink.
    sink_params: FrozenSet[int] = frozenset()

    def merged(self, other: "TaintSummary") -> "TaintSummary":
        return TaintSummary(
            return_origin=(
                self.return_origin
                if self.return_origin is not None
                else other.return_origin
            ),
            return_params=self.return_params | other.return_params,
            sink_params=self.sink_params | other.sink_params,
        )


#: Summary of a function the analysis knows nothing about.
EMPTY_TAINT = TaintSummary()


@dataclass(frozen=True)
class PuritySummary:
    """Transitive allocation-freedom of a function.

    ``impurity`` is ``None`` for allocation-free functions; otherwise a
    stable description of the first impurity found, prefixed with the
    callee chain when it lives further down the call graph.  The
    description deliberately carries no line numbers so baseline
    fingerprints survive unrelated edits.
    """

    impurity: Optional[str] = None

    @property
    def pure(self) -> bool:
        return self.impurity is None


@dataclass
class MutationInfo:
    """Module-global writes performed directly by one function."""

    #: Names of the module globals written.
    names: Tuple[str, ...] = ()
    #: Write sites as ``(line, col)`` pairs in the function's file.
    sites: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def writes(self) -> bool:
        return bool(self.names)


def node_location(node: ast.AST) -> Tuple[int, int]:
    """``(line, col)`` of an AST node (defensive defaults)."""
    return getattr(node, "lineno", 1), getattr(node, "col_offset", 0)
