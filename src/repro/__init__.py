"""Reproduction of *On the Benefits of Anticipating Load Imbalance for
Performance Optimization of Parallel Applications* (Boulmier, Raynaud,
Abdennadher, Chopard -- IEEE CLUSTER 2019, arXiv:1909.07168).

The library implements the paper's contribution -- the **Underloading Load
Balancing Approach (ULBA)** -- together with every substrate its evaluation
depends on:

* :mod:`repro.core` -- the analytical application/LB cost models (Eq. 1-12):
  the standard LB method, the ULBA model, the LB interval bounds
  ``sigma_minus`` / ``sigma_plus``, LB schedules and their evaluation, and
  the Table II random-instance sampler.
* :mod:`repro.optim` -- a self-contained simulated-annealing engine, the
  LB-schedule search of Figure 2 and ``alpha`` grid searches.
* :mod:`repro.simcluster` -- a deterministic virtual SPMD cluster (per-PE
  virtual clocks, MPI-like collectives with a latency/bandwidth cost model,
  gossip dissemination, utilization traces) replacing the paper's physical
  MPI cluster.
* :mod:`repro.partitioning` -- weighted 1-D/stripe partitioning (the paper's
  centralized LB technique), plus RCB and Morton-SFC baselines.
* :mod:`repro.lb` -- the load-balancing framework: WIR estimation and the
  replicated WIR database, the z-score overload detector, the standard and
  ULBA workload policies, adaptive trigger policies (periodic, Menon,
  Zhai-style degradation), and the centralized load balancer (Algorithm 2).
* :mod:`repro.erosion` -- the fluid-with-erosion evaluation application of
  Section IV-B (rock discs, probabilistic erosion, mesh refinement).
* :mod:`repro.runtime` -- the Algorithm 1 iterative skeleton binding an
  application, the virtual cluster and the LB framework.
* :mod:`repro.experiments` -- one driver per paper figure (Fig. 2-5)
  regenerating the corresponding series/tables.
* :mod:`repro.scenarios` -- a registry of named, parameterized workload
  scenarios (the paper's two applications plus bursty, drifting,
  adversarial, multi-phase and trace-replay generators).
* :mod:`repro.campaign` -- a parallel campaign engine crossing scenarios
  with LB policies and seeds, with JSONL persistence and resume.
* :mod:`repro.resilience` -- fault-tolerant campaign execution: a
  supervised worker pool with retries and deadlines, poison-cell
  quarantine and a deterministic chaos harness.
* :mod:`repro.api` -- the unified declarative run API: a serializable
  :class:`~repro.api.config.RunConfig` tree, the
  :class:`~repro.api.session.Session` facade executing it, and a streaming
  event bus (every experiment driver, the campaign engine and the CLI run
  through it).

Quickstart
----------
>>> from repro.core import TableIISampler, compare_policies
>>> instance = TableIISampler().sample(seed=0)
>>> report = compare_policies(instance)
>>> report.ulba_wins
True
"""

from repro.api import PolicyConfig, RunConfig, Session, SessionResult
from repro.campaign import CampaignSpec, PolicySpec, run_campaign
from repro.resilience import ChaosConfig, RetryPolicy, SupervisedPool
from repro.core import (
    ApplicationParameters,
    GainReport,
    LBSchedule,
    ScheduleEvaluation,
    StandardLBModel,
    TableIISampler,
    ULBAModel,
    WorkloadModel,
    compare_policies,
    evaluate_schedule,
    interval_bounds,
    make_parameters,
    menon_tau,
    sigma_minus,
    sigma_plus,
    sigma_plus_schedule,
)
from repro.erosion import ErosionApplication, ErosionConfig
from repro.lb import (
    CentralizedLoadBalancer,
    DegradationTrigger,
    StandardPolicy,
    ULBADegradationTrigger,
    ULBAPolicy,
)
from repro.runtime import (
    IterativeRunner,
    RunResult,
    SyntheticGrowthApplication,
    compare_runs,
)
from repro.scenarios import ScenarioSpec, available_scenarios, get_scenario
from repro.simcluster import VirtualCluster

__version__ = "1.0.0"

__all__ = [
    "ApplicationParameters",
    "CampaignSpec",
    "CentralizedLoadBalancer",
    "ChaosConfig",
    "DegradationTrigger",
    "ErosionApplication",
    "ErosionConfig",
    "GainReport",
    "IterativeRunner",
    "LBSchedule",
    "PolicyConfig",
    "PolicySpec",
    "RetryPolicy",
    "RunConfig",
    "RunResult",
    "ScenarioSpec",
    "Session",
    "SessionResult",
    "ScheduleEvaluation",
    "StandardLBModel",
    "StandardPolicy",
    "SupervisedPool",
    "SyntheticGrowthApplication",
    "TableIISampler",
    "ULBADegradationTrigger",
    "ULBAModel",
    "ULBAPolicy",
    "VirtualCluster",
    "WorkloadModel",
    "__version__",
    "available_scenarios",
    "compare_policies",
    "compare_runs",
    "evaluate_schedule",
    "get_scenario",
    "interval_bounds",
    "make_parameters",
    "menon_tau",
    "run_campaign",
    "sigma_minus",
    "sigma_plus",
    "sigma_plus_schedule",
]
