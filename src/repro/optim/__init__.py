"""Optimization substrate: simulated annealing and policy-parameter searches.

The paper validates its closed-form ``sigma_plus`` rule by comparing against
LB schedules found with a heuristic search (the ``simanneal`` Python package)
over the space of boolean LB-schedule vectors (Section III-B, Figure 2), and
selects the best ULBA ``alpha`` per instance by grid search (Figure 3) or
sweeps it on the erosion application (Figure 5).

* :mod:`repro.optim.annealing` -- a self-contained simulated-annealing
  engine with the same ergonomics as ``simanneal`` (subclass, implement
  ``move`` and ``energy``, call ``anneal``); provided because the original
  package cannot be installed offline.
* :mod:`repro.optim.schedule_search` -- the annealer specialised to LB
  schedules, used to reproduce Figure 2.
* :mod:`repro.optim.alpha_search` -- grid search over the underloading
  fraction ``alpha``, for the analytical model (Figure 3) and for arbitrary
  callables (Figure 5 on the erosion application).
"""

from repro.optim.annealing import Annealer, AnnealingResult, AnnealingSchedule
from repro.optim.schedule_search import (
    ScheduleAnnealer,
    ScheduleSearchResult,
    anneal_schedule,
)
from repro.optim.alpha_search import (
    AlphaSearchResult,
    AlphaSweepPoint,
    search_best_alpha,
    sweep_alpha,
)

__all__ = [
    "AlphaSearchResult",
    "AlphaSweepPoint",
    "Annealer",
    "AnnealingResult",
    "AnnealingSchedule",
    "ScheduleAnnealer",
    "ScheduleSearchResult",
    "anneal_schedule",
    "search_best_alpha",
    "sweep_alpha",
]
