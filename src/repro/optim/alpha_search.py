"""Grid search and sweeps over the ULBA underloading fraction ``alpha``.

The paper treats ``alpha`` as a user-defined constant and repeatedly notes
that its best value depends on the instance (in particular on the fraction
of overloading PEs).  Two flavours of search are needed:

* an *analytical* search on :class:`~repro.core.parameters.ApplicationParameters`
  instances, used by the Figure 3 study ("for each application instance, we
  tested 100 values of alpha ... and we kept the value that maximizes the
  performance");
* a *black-box* sweep over an arbitrary ``alpha -> time`` callable, used by
  the Figure 5 study on the erosion application (and usable on any
  user-provided application).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.core.gains import best_alpha_for_instance
from repro.core.parameters import ApplicationParameters, alpha_grid
from repro.core.schedule import ScheduleEvaluation

__all__ = [
    "AlphaSearchResult",
    "AlphaSweepPoint",
    "search_best_alpha",
    "sweep_alpha",
]


@dataclass(frozen=True)
class AlphaSweepPoint:
    """One evaluated point of an ``alpha`` sweep."""

    alpha: float
    total_time: float

    def as_row(self) -> Tuple[float, float]:
        """The ``(alpha, total_time)`` pair as a plain tuple (table printing)."""
        return (self.alpha, self.total_time)


@dataclass(frozen=True)
class AlphaSearchResult:
    """Outcome of an ``alpha`` search/sweep."""

    points: Tuple[AlphaSweepPoint, ...]
    best_alpha: float
    best_time: float

    @property
    def worst_time(self) -> float:
        """Largest total time observed over the sweep."""
        return max(p.total_time for p in self.points)

    @property
    def sensitivity(self) -> float:
        """Relative spread ``(worst - best) / worst`` of the sweep.

        Figure 5 reports up to ~14 % performance difference across ``alpha``
        values; this property is the matching scalar.
        """
        worst = self.worst_time
        if worst == 0.0:
            return 0.0
        return (worst - self.best_time) / worst


def search_best_alpha(
    params: ApplicationParameters,
    alphas: Optional[Sequence[float]] = None,
) -> Tuple[float, ScheduleEvaluation]:
    """Best ``alpha`` for an analytical instance (thin re-export).

    Provided here so experiment code can import every ``alpha``-related
    search from one module; delegates to
    :func:`repro.core.gains.best_alpha_for_instance`.
    """
    return best_alpha_for_instance(params, alphas)


def sweep_alpha(
    evaluate: Callable[[float], float],
    alphas: Optional[Sequence[float]] = None,
) -> AlphaSearchResult:
    """Sweep ``alpha`` over a black-box ``alpha -> total time`` callable.

    Parameters
    ----------
    evaluate:
        Callable returning the total (virtual or wall-clock) time of the
        application when run with the given underloading fraction.
    alphas:
        Candidate values; defaults to the paper's Figure 5 grid
        ``{0.1, 0.2, 0.3, 0.4, 0.5}``.

    Returns
    -------
    AlphaSearchResult
        All evaluated points plus the argmin.
    """
    if alphas is None:
        candidates = np.asarray([0.1, 0.2, 0.3, 0.4, 0.5], dtype=float)
    else:
        candidates = np.asarray(list(alphas), dtype=float)
    if candidates.size == 0:
        raise ValueError("alphas must not be empty")
    if np.any((candidates < 0.0) | (candidates > 1.0)):
        raise ValueError("all alpha values must lie within [0, 1]")

    points = []
    for alpha in candidates:
        total_time = float(evaluate(float(alpha)))
        if total_time < 0.0:
            raise ValueError(
                f"evaluate({alpha}) returned a negative time ({total_time})"
            )
        points.append(AlphaSweepPoint(alpha=float(alpha), total_time=total_time))

    best = min(points, key=lambda p: p.total_time)
    return AlphaSearchResult(
        points=tuple(points), best_alpha=best.alpha, best_time=best.total_time
    )


def default_alpha_grid(num_values: int = 100) -> np.ndarray:
    """The paper's 100-value uniform grid on ``[0, 1]`` (re-export)."""
    return alpha_grid(num_values)
