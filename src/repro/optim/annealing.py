"""A self-contained simulated-annealing engine.

The paper uses Matthew Perry's ``simanneal`` package to search for
near-optimal load-balancing schedules.  That package is a ~200-line generic
annealer; this module re-implements the same algorithm (exponential cooling
between ``t_max`` and ``t_min``, Metropolis acceptance, best-state tracking,
optional automatic temperature calibration) so the reproduction has no
unavailable dependency, and adds deterministic seeding.

Usage mirrors ``simanneal``::

    class MyProblem(Annealer):
        def move(self):        # mutate self.state in place (or return new)
            ...
        def energy(self):      # return the scalar objective to minimise
            ...

    result = MyProblem(initial_state).anneal()
    result.best_state, result.best_energy
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass, field
from typing import Generic, List, Optional, Tuple, TypeVar

from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["AnnealingSchedule", "AnnealingResult", "Annealer"]

StateT = TypeVar("StateT")


@dataclass(frozen=True)
class AnnealingSchedule:
    """Cooling schedule of the annealer.

    Attributes
    ----------
    t_max, t_min:
        Initial and final temperatures (must satisfy ``t_max >= t_min > 0``).
    steps:
        Number of candidate moves evaluated.
    updates:
        Number of progress snapshots recorded in the result history.
    """

    t_max: float = 25_000.0
    t_min: float = 2.5
    steps: int = 50_000
    updates: int = 100

    def __post_init__(self) -> None:
        check_positive(self.t_max, "t_max")
        check_positive(self.t_min, "t_min")
        if self.t_min > self.t_max:
            raise ValueError(
                f"t_min ({self.t_min}) must not exceed t_max ({self.t_max})"
            )
        check_positive_int(self.steps, "steps")
        if self.updates < 0:
            raise ValueError(f"updates must be >= 0, got {self.updates}")

    def temperature(self, step: int) -> float:
        """Exponentially interpolated temperature at ``step``."""
        if self.steps == 1:
            return self.t_max
        t_factor = -math.log(self.t_max / self.t_min)
        return self.t_max * math.exp(t_factor * step / (self.steps - 1))


@dataclass
class AnnealingResult(Generic[StateT]):
    """Outcome of one :meth:`Annealer.anneal` run."""

    best_state: StateT
    best_energy: float
    initial_energy: float
    final_energy: float
    steps: int
    accepted: int
    improved: int
    #: ``(step, temperature, current_energy, best_energy)`` snapshots.
    history: List[Tuple[int, float, float, float]] = field(default_factory=list)

    @property
    def acceptance_rate(self) -> float:
        """Fraction of proposed moves that were accepted."""
        return self.accepted / self.steps if self.steps else 0.0

    @property
    def improvement(self) -> float:
        """Absolute energy improvement over the initial state."""
        return self.initial_energy - self.best_energy


class Annealer(Generic[StateT]):
    """Generic simulated-annealing optimiser (minimisation).

    Subclasses must implement :meth:`move` (propose a neighbouring state,
    either by mutating ``self.state`` in place or by returning a new state)
    and :meth:`energy` (the objective).  States are deep-copied when
    snapshots are taken; override :meth:`copy_state` for cheaper copies.
    """

    #: Default cooling schedule; subclasses may override.
    schedule = AnnealingSchedule()

    def __init__(
        self,
        initial_state: StateT,
        *,
        schedule: Optional[AnnealingSchedule] = None,
        seed: SeedLike = None,
    ) -> None:
        self.state: StateT = self.copy_state(initial_state)
        if schedule is not None:
            self.schedule = schedule
        self.rng = ensure_rng(seed)

    # ------------------------------------------------------------------
    # Problem definition (to be provided by subclasses).
    # ------------------------------------------------------------------
    def move(self) -> Optional[StateT]:
        """Propose a neighbouring state.

        Either mutate ``self.state`` in place and return ``None`` or return
        the new state.
        """
        raise NotImplementedError

    def energy(self) -> float:
        """Return the objective value of ``self.state`` (lower is better)."""
        raise NotImplementedError

    def copy_state(self, state: StateT) -> StateT:
        """Return a copy of ``state``; override for performance."""
        return copy.deepcopy(state)

    # ------------------------------------------------------------------
    # Annealing loop.
    # ------------------------------------------------------------------
    def anneal(self) -> AnnealingResult[StateT]:
        """Run the annealing loop and return the best state found."""
        sched = self.schedule
        current_energy = self.energy()
        initial_energy = current_energy
        best_state = self.copy_state(self.state)
        best_energy = current_energy

        accepted = 0
        improved = 0
        history: List[Tuple[int, float, float, float]] = []
        snapshot_every = (
            max(1, sched.steps // sched.updates) if sched.updates else 0
        )

        for step in range(sched.steps):
            temperature = sched.temperature(step)
            previous_state = self.copy_state(self.state)
            previous_energy = current_energy

            proposed = self.move()
            if proposed is not None:
                self.state = proposed
            candidate_energy = self.energy()
            delta = candidate_energy - previous_energy

            if delta <= 0.0 or self.rng.random() < math.exp(-delta / temperature):
                accepted += 1
                current_energy = candidate_energy
                if candidate_energy < best_energy:
                    improved += 1
                    best_energy = candidate_energy
                    best_state = self.copy_state(self.state)
            else:
                self.state = previous_state
                current_energy = previous_energy

            if snapshot_every and (step % snapshot_every == 0 or step == sched.steps - 1):
                history.append((step, temperature, current_energy, best_energy))

        # Leave the annealer holding the best state, like simanneal does.
        self.state = self.copy_state(best_state)
        return AnnealingResult(
            best_state=best_state,
            best_energy=best_energy,
            initial_energy=initial_energy,
            final_energy=current_energy,
            steps=sched.steps,
            accepted=accepted,
            improved=improved,
            history=history,
        )

    # ------------------------------------------------------------------
    def auto_schedule(
        self, *, minutes_equivalent_steps: int = 2_000, target_acceptance: float = 0.98
    ) -> AnnealingSchedule:
        """Heuristically calibrate a cooling schedule from random probing.

        A lightweight analogue of ``simanneal``'s ``auto`` method: sample
        random moves from the initial state, estimate the energy-change
        scale, and choose ``t_max`` so that roughly ``target_acceptance`` of
        uphill moves would be accepted initially and ``t_min`` three orders
        of magnitude below ``t_max``.
        """
        check_positive_int(minutes_equivalent_steps, "minutes_equivalent_steps")
        if not 0.0 < target_acceptance < 1.0:
            raise ValueError("target_acceptance must lie in (0, 1)")

        original_state = self.copy_state(self.state)
        deltas: List[float] = []
        current = self.energy()
        for _ in range(64):
            proposed = self.move()
            if proposed is not None:
                self.state = proposed
            candidate = self.energy()
            deltas.append(abs(candidate - current))
            current = candidate
        self.state = original_state

        scale = max(max(deltas), 1e-12)
        t_max = -scale / math.log(target_acceptance)
        t_min = max(t_max * 1e-3, 1e-12)
        return AnnealingSchedule(
            t_max=t_max, t_min=t_min, steps=minutes_equivalent_steps, updates=50
        )
