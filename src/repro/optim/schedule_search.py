"""Simulated-annealing search over load-balancing schedules (Section III-B).

The paper validates the closed-form ``sigma_plus`` rule by comparing, over
1000 random application instances, the total time of (a) the schedule that
calls the load balancer every ``sigma_plus`` iterations and (b) a schedule
found by simulated annealing over the space of boolean vectors of length
``gamma`` (one flag per iteration: call / don't call the load balancer).
Figure 2 reports the histogram of the relative difference; the annealed
schedule is typically slightly better (average gain of ``sigma_plus``
relative to it: about -0.8 %).

This module provides the annealer specialised to that search space, with the
ULBA analytical cost model (Eq. 4 with Eq. 5 in Eq. 3) as the energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.parameters import ApplicationParameters
from repro.core.schedule import (
    LBSchedule,
    ScheduleEvaluation,
    evaluate_schedule,
    sigma_plus_schedule,
)
from repro.optim.annealing import Annealer, AnnealingResult, AnnealingSchedule
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.stats import relative_gain

__all__ = ["ScheduleAnnealer", "ScheduleSearchResult", "anneal_schedule"]


class ScheduleAnnealer(Annealer[List[bool]]):
    """Annealer over boolean LB-schedule vectors.

    The state is the boolean vector of Section III-B ("a state is a vector
    of booleans of size gamma that contains the LB state of each
    iteration"); a move toggles the load balancer at one random iteration.
    The energy is the total application time of Eq. 4 under the requested
    cost model.
    """

    def __init__(
        self,
        params: ApplicationParameters,
        *,
        model: str = "ulba",
        alpha: Optional[float] = None,
        initial_schedule: Optional[LBSchedule] = None,
        schedule: Optional[AnnealingSchedule] = None,
        seed: SeedLike = None,
    ) -> None:
        self.params = params
        self.model = model
        self.alpha = params.alpha if alpha is None else float(alpha)
        if initial_schedule is None:
            initial_schedule = sigma_plus_schedule(params, alpha=self.alpha)
        if initial_schedule.iterations != params.iterations:
            raise ValueError(
                "initial_schedule length does not match the application length"
            )
        super().__init__(initial_schedule.to_bools(), schedule=schedule, seed=seed)

    # ------------------------------------------------------------------
    def copy_state(self, state: List[bool]) -> List[bool]:
        return list(state)

    def move(self) -> None:
        """Toggle the LB flag of a uniformly random iteration."""
        index = int(self.rng.integers(0, self.params.iterations))
        self.state[index] = not self.state[index]
        return None

    def energy(self) -> float:
        """Total application time of the current schedule (seconds)."""
        schedule = LBSchedule.from_bools(self.state)
        evaluation = evaluate_schedule(
            self.params, schedule, model=self.model, alpha=self.alpha
        )
        return evaluation.total_time


@dataclass(frozen=True)
class ScheduleSearchResult:
    """Outcome of the Figure 2 comparison on one application instance."""

    #: Application instance.
    params: ApplicationParameters
    #: Evaluation of the closed-form sigma_plus schedule.
    sigma_plus: ScheduleEvaluation
    #: Evaluation of the best schedule found by simulated annealing.
    annealed: ScheduleEvaluation
    #: Relative gain of the sigma_plus schedule over the annealed one
    #: (negative when the annealed schedule is better, as in most of Fig. 2).
    gain_vs_heuristic: float
    #: Raw annealing diagnostics.
    annealing: AnnealingResult

    @property
    def sigma_plus_is_close(self) -> bool:
        """True when sigma_plus is within 10 % of the annealed optimum."""
        return self.gain_vs_heuristic > -0.10


def anneal_schedule(
    params: ApplicationParameters,
    *,
    model: str = "ulba",
    alpha: Optional[float] = None,
    annealing_steps: int = 4_000,
    seed: SeedLike = None,
    auto_temperature: bool = True,
) -> ScheduleSearchResult:
    """Run the Figure 2 comparison for one application instance.

    Parameters
    ----------
    params:
        The application instance (typically drawn from
        :class:`repro.core.parameters.TableIISampler`).
    model, alpha:
        Cost model and underloading fraction used for both the analytical
        ``sigma_plus`` schedule and the annealed search (the paper uses the
        ULBA model with the instance's own random ``alpha``).
    annealing_steps:
        Number of annealing moves.  The paper lets ``simanneal`` converge for
        ~2 minutes per instance; a few thousand toggles of a 100-long vector
        reach the same plateau in well under a second.
    seed:
        Seed for the annealer's move/acceptance randomness.
    auto_temperature:
        Calibrate the temperature range from the energy landscape instead of
        using ``simanneal``-style absolute defaults (recommended: energies
        here are seconds, not arbitrary units).
    """
    rng = ensure_rng(seed)
    effective_alpha = params.alpha if alpha is None else float(alpha)

    reference_schedule = sigma_plus_schedule(params, alpha=effective_alpha)
    reference_eval = evaluate_schedule(
        params, reference_schedule, model=model, alpha=effective_alpha
    )

    annealer = ScheduleAnnealer(
        params,
        model=model,
        alpha=effective_alpha,
        initial_schedule=reference_schedule,
        seed=rng,
    )
    if auto_temperature:
        annealer.schedule = annealer.auto_schedule(
            minutes_equivalent_steps=annealing_steps
        )
    else:
        annealer.schedule = AnnealingSchedule(steps=annealing_steps)
    result = annealer.anneal()

    best_schedule = LBSchedule.from_bools(result.best_state)
    best_eval = evaluate_schedule(
        params, best_schedule, model=model, alpha=effective_alpha
    )

    return ScheduleSearchResult(
        params=params,
        sigma_plus=reference_eval,
        annealed=best_eval,
        gain_vs_heuristic=relative_gain(
            best_eval.total_time, reference_eval.total_time
        ),
        annealing=result,
    )
