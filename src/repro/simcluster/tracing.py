"""Execution traces of the virtual cluster.

Figure 4b of the paper plots the *average PE utilization* per iteration for
the standard method and for ULBA, together with the (implicit) positions of
the load-balancing calls -- ULBA shows fewer utilization drops and 62.5 %
fewer LB calls on the 32-PE / 1-erodible-rock case.  The
:class:`ClusterTrace` recorder stores exactly the per-iteration data needed
to regenerate that figure, plus summary statistics used by the experiment
tables (total time, number of LB calls, mean utilization).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["IterationRecord", "LBEventRecord", "ClusterTrace"]


@dataclass(frozen=True)
class IterationRecord:
    """Timing of one application iteration."""

    #: Iteration index.
    iteration: int
    #: Virtual duration of the iteration (seconds).
    elapsed: float
    #: Per-PE compute time within the iteration (seconds).
    pe_compute_times: Tuple[float, ...]
    #: Virtual timestamp at which the iteration completed.
    timestamp: float

    @property
    def average_utilization(self) -> float:
        """Mean per-PE busy fraction of the iteration (Fig. 4b y-axis)."""
        if self.elapsed <= 0.0:
            return 1.0
        times = np.asarray(self.pe_compute_times, dtype=float)
        return float(np.clip(times / self.elapsed, 0.0, 1.0).mean())

    @property
    def max_compute_time(self) -> float:
        """Compute time of the most loaded PE in the iteration."""
        return max(self.pe_compute_times) if self.pe_compute_times else 0.0


@dataclass(frozen=True)
class LBEventRecord:
    """One load-balancing invocation."""

    #: Iteration at which the load balancer was called.
    iteration: int
    #: Virtual cost of the LB step (seconds).
    cost: float
    #: Virtual timestamp at which the LB step completed.
    timestamp: float


@dataclass
class ClusterTrace:
    """Recorder of iteration and LB events for one application run."""

    num_pes: int
    iterations: List[IterationRecord] = field(default_factory=list)
    lb_events: List[LBEventRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    def record_iteration(
        self,
        *,
        iteration: int,
        elapsed: float,
        pe_compute_times: Sequence[float],
        timestamp: float,
    ) -> IterationRecord:
        """Append one iteration record (called by the cluster/compute step)."""
        record = IterationRecord(
            iteration=iteration,
            elapsed=elapsed,
            pe_compute_times=tuple(float(t) for t in pe_compute_times),
            timestamp=timestamp,
        )
        self.iterations.append(record)
        return record

    def record_lb_event(
        self, *, iteration: int, cost: float, timestamp: float
    ) -> LBEventRecord:
        """Append one LB-event record."""
        record = LBEventRecord(iteration=iteration, cost=cost, timestamp=timestamp)
        self.lb_events.append(record)
        return record

    # ------------------------------------------------------------------
    @property
    def num_iterations(self) -> int:
        """Number of recorded iterations."""
        return len(self.iterations)

    @property
    def num_lb_calls(self) -> int:
        """Number of recorded load-balancing invocations."""
        return len(self.lb_events)

    @property
    def total_time(self) -> float:
        """Total virtual time: iteration time plus LB time."""
        return self.iteration_time + self.lb_cost_time

    @property
    def iteration_time(self) -> float:
        """Sum of iteration durations."""
        return float(sum(r.elapsed for r in self.iterations))

    @property
    def lb_cost_time(self) -> float:
        """Sum of LB-step costs."""
        return float(sum(e.cost for e in self.lb_events))

    # ------------------------------------------------------------------
    def utilization_series(self) -> np.ndarray:
        """Average PE utilization per iteration (the Fig. 4b curve)."""
        return np.asarray([r.average_utilization for r in self.iterations], dtype=float)

    def iteration_time_series(self) -> np.ndarray:
        """Per-iteration duration series."""
        return np.asarray([r.elapsed for r in self.iterations], dtype=float)

    def lb_iterations(self) -> List[int]:
        """Iteration indices at which the load balancer was invoked."""
        return [e.iteration for e in self.lb_events]

    def mean_utilization(self) -> float:
        """Time-weighted average PE utilization over the whole run."""
        if not self.iterations:
            return 1.0
        durations = self.iteration_time_series()
        utils = self.utilization_series()
        total = durations.sum()
        if total <= 0.0:
            return float(utils.mean())
        return float((durations * utils).sum() / total)

    def utilization_drops(self, threshold: float = 0.8) -> int:
        """Number of iterations whose average utilization falls below ``threshold``.

        Figure 4b's qualitative claim ("less drops in the CPU usage") is made
        quantitative by counting sub-threshold iterations.
        """
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must lie in (0, 1], got {threshold}")
        return int((self.utilization_series() < threshold).sum())

    def summary(self) -> dict:
        """Plain-dictionary summary used by experiment tables.

        Besides the totals, two derived health indicators:
        ``utilization_drops`` counts the iterations whose average
        utilization fell below the default 0.8 threshold (Fig. 4b's "drops
        in the CPU usage"), and ``lb_call_fraction`` is the share of
        iterations that invoked the load balancer (0.0 for an empty trace).
        """
        return {
            "num_pes": self.num_pes,
            "iterations": self.num_iterations,
            "lb_calls": self.num_lb_calls,
            "total_time": self.total_time,
            "iteration_time": self.iteration_time,
            "lb_cost_time": self.lb_cost_time,
            "mean_utilization": self.mean_utilization(),
            "utilization_drops": self.utilization_drops(),
            "lb_call_fraction": (
                self.num_lb_calls / self.num_iterations
                if self.num_iterations
                else 0.0
            ),
        }
