"""Gossip-based dissemination of per-PE metrics (Section III-C).

In the paper's implementation each PE keeps a database storing the workload
increase rate (WIR) of every PE.  Each PE evaluates its own WIR and
propagates it -- together with the most recent WIRs in its database -- to
the other PEs using a dissemination (gossip) algorithm; one dissemination
step is performed per application iteration, and the principle of
persistence makes slightly stale values acceptable.

:class:`GossipBoard` reproduces that mechanism on flat array state: the
whole replicated database is a pair of ``(P, P)`` matrices -- ``values`` and
``versions`` -- where row ``r`` is the view of rank ``r`` and column ``s``
holds what ``r`` knows about source rank ``s`` (version ``-1`` = unknown).
One :meth:`step` performs the entire synchronous push round with a single
batched RNG draw (:func:`select_push_targets`) and a vectorized
freshest-version merge, instead of per-rank ``dict`` snapshot/merge loops.

Version tie-break rule (applied consistently):

* **freshest wins** -- a merged entry only overwrites a strictly older one;
  on equal versions the receiver keeps what it has (copies of the same
  ``(source, version)`` pair carry the same value, so this is value-neutral);
* **self-publish always wins ties** -- a rank re-publishing its own value at
  an unchanged version replaces its local entry, so the latest published
  value is what starts propagating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive_int

__all__ = ["GossipConfig", "GossipBoard", "select_push_targets"]


@dataclass(frozen=True)
class GossipConfig:
    """Tuning knobs of the push-gossip dissemination."""

    #: Number of random peers each rank pushes its view to per step.
    fanout: int = 2
    #: When True, every rank also pushes to rank 0 every step, mimicking
    #: implementations that piggy-back metrics on an existing reduction tree.
    include_root: bool = False

    def __post_init__(self) -> None:
        check_positive_int(self.fanout, "fanout")


def select_push_targets(
    rng: np.random.Generator,
    num_ranks: int,
    fanout: int,
    *,
    include_root: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Select every rank's push targets for one round with one RNG draw.

    Each rank pushes to ``min(fanout, num_ranks - 1)`` distinct peers chosen
    uniformly at random (never itself).  The selection is done with a single
    batched draw: one ``(P, P)`` matrix of uniform keys whose ``fanout``
    smallest off-diagonal entries per row are the targets -- a uniformly
    random ``fanout``-subset per rank, like per-rank sampling without
    replacement, but batched.

    Returns ``(src, dst)`` index arrays of equal length: push ``e`` sends the
    view of rank ``src[e]`` to rank ``dst[e]``.  With ``include_root``, every
    rank other than 0 additionally pushes to rank 0.
    """
    check_positive_int(num_ranks, "num_ranks")
    if num_ranks == 1:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty
    k = min(fanout, num_ranks - 1)
    keys = rng.random((num_ranks, num_ranks))
    np.fill_diagonal(keys, np.inf)
    targets = np.argpartition(keys, k - 1, axis=1)[:, :k]

    src = np.repeat(np.arange(num_ranks, dtype=np.intp), k)
    dst = targets.ravel().astype(np.intp, copy=False)
    if include_root:
        # Ranks != 0 whose targets missed rank 0 push to it as well.
        missing_root = np.flatnonzero(~(targets == 0).any(axis=1))
        missing_root = missing_root[missing_root != 0]
        if missing_root.size:
            src = np.concatenate([src, missing_root.astype(np.intp)])
            dst = np.concatenate(
                [dst, np.zeros(missing_root.size, dtype=np.intp)]
            )
    return src, dst


class GossipBoard:
    """Replicated ``rank -> value`` board maintained by push gossip."""

    def __init__(
        self,
        num_ranks: int,
        *,
        config: Optional[GossipConfig] = None,
        seed: SeedLike = None,
    ) -> None:
        check_positive_int(num_ranks, "num_ranks")
        self.num_ranks = num_ranks
        self.config = config or GossipConfig()
        self._rng = ensure_rng(seed)
        #: ``values[r, s]`` / ``versions[r, s]``: what rank ``r`` knows about
        #: source rank ``s``; version -1 marks an unknown entry.
        self._values = np.zeros((num_ranks, num_ranks), dtype=float)
        self._versions = np.full((num_ranks, num_ranks), -1, dtype=np.int64)
        self._steps = 0

    # ------------------------------------------------------------------
    @property
    def steps(self) -> int:
        """Number of dissemination steps performed so far."""
        return self._steps

    def publish(self, rank: int, value: float, *, version: Optional[int] = None) -> None:
        """Rank ``rank`` publishes a new ``value`` for itself.

        ``version`` defaults to the current step count, so values published
        later always win over older ones when views merge.  A self-publish
        at the *same* version also wins (ties go to the owner), so the
        latest value published within a step is the one disseminated.
        Explicit versions must be >= 0 (-1 is the internal "unknown"
        sentinel).
        """
        self._check_rank(rank)
        v = self._steps if version is None else int(version)
        if v < 0:
            raise ValueError(f"version must be >= 0, got {v}")
        if v >= self._versions[rank, rank]:
            self._values[rank, rank] = float(value)
            self._versions[rank, rank] = v

    def publish_all(
        self, values: np.ndarray, *, version: Optional[int] = None
    ) -> None:
        """Every rank publishes its own value in one vectorized update.

        Equivalent to ``publish(r, values[r])`` for every rank ``r``, with a
        single diagonal write instead of ``P`` Python calls.
        """
        values = np.asarray(values, dtype=float)
        if values.shape != (self.num_ranks,):
            raise ValueError(
                f"values must have one entry per rank ({self.num_ranks}), "
                f"got {values.shape}"
            )
        v = self._steps if version is None else int(version)
        if v < 0:
            raise ValueError(f"version must be >= 0, got {v}")
        diag = np.arange(self.num_ranks)
        mask = v >= self._versions[diag, diag]
        idx = diag[mask]
        self._values[idx, idx] = values[mask]
        self._versions[idx, idx] = v

    def local_view(self, rank: int) -> Dict[int, float]:
        """The values rank ``rank`` currently knows, keyed by source rank."""
        self._check_rank(rank)
        known = np.flatnonzero(self._versions[rank] >= 0)
        row = self._values[rank]
        return {int(src): float(row[src]) for src in known}

    def known_mask(self, rank: int) -> np.ndarray:
        """Boolean mask of the source ranks whose value ``rank`` knows."""
        self._check_rank(rank)
        return self._versions[rank] >= 0

    def values_row(self, rank: int) -> np.ndarray:
        """Raw value row of ``rank`` (entries only valid where known)."""
        self._check_rank(rank)
        return self._values[rank]

    def known_fraction(self, rank: int) -> float:
        """Fraction of ranks whose value is known by ``rank``."""
        self._check_rank(rank)
        return float((self._versions[rank] >= 0).sum()) / self.num_ranks

    def is_complete(self) -> bool:
        """True when every rank knows a value for every other rank."""
        return bool((self._versions >= 0).all())

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Perform one push-gossip dissemination round.

        Each rank selects ``fanout`` distinct random peers (one batched RNG
        draw for the whole round) and pushes its whole view; receivers keep
        the freshest version of each entry.  The pushes of a round are based
        on the views at the *start* of the round (synchronous gossip),
        matching one dissemination step per application iteration.
        """
        src, dst = select_push_targets(
            self._rng,
            self.num_ranks,
            self.config.fanout,
            include_root=self.config.include_root,
        )
        if src.size:
            self._merge_pushes(src, dst)
        self._steps += 1

    def run_until_complete(self, max_steps: int = 1_000) -> int:
        """Gossip until every rank knows every value; returns the step count."""
        check_positive_int(max_steps, "max_steps")
        initial = self._steps
        while not self.is_complete():
            if self._steps - initial >= max_steps:
                raise RuntimeError(
                    f"gossip did not converge within {max_steps} steps; "
                    "did every rank publish a value?"
                )
            self.step()
        return self._steps - initial

    # ------------------------------------------------------------------
    def _merge_pushes(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Vectorized freshest-version merge of one round's pushes.

        All pushes carry the *pre-round* snapshot of the sender's row.  Each
        push's per-entry version is packed with its push index into one
        int64 key, so a grouped ``np.maximum.reduceat`` per receiver yields
        both the freshest incoming version and a push that carries it;
        entries whose version strictly increases take that push's value.
        Which of several equal-version pushes wins is immaterial: copies of
        the same ``(source, version)`` pair hold the same value.
        """
        num_pushes = src.shape[0]
        order = np.argsort(dst, kind="stable")
        dst_sorted = dst[order]
        boundaries = np.empty(num_pushes, dtype=bool)
        boundaries[0] = True
        np.not_equal(dst_sorted[1:], dst_sorted[:-1], out=boundaries[1:])
        group_starts = np.flatnonzero(boundaries)
        receivers = dst_sorted[group_starts]
        src_sorted = src[order]

        # key = version * num_pushes + push_position: max key <=> max version,
        # ties resolved towards later (value-identical) pushes.
        keys = self._versions[src_sorted] * num_pushes
        keys += np.arange(num_pushes)[:, None]
        best = np.maximum.reduceat(keys, group_starts, axis=0)
        incoming_ver = best // num_pushes

        current_ver = self._versions[receivers]
        improved = incoming_ver > current_ver
        if not improved.any():
            return
        # Gather only the winning pushes' values (still the pre-round state:
        # nothing has been written yet).
        entry = np.arange(self.num_ranks)
        incoming_val = self._values[src_sorted[best % num_pushes], entry]
        self._values[receivers] = np.where(
            improved, incoming_val, self._values[receivers]
        )
        self._versions[receivers] = np.where(improved, incoming_ver, current_ver)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} outside [0, {self.num_ranks})")
