"""Gossip-based dissemination of per-PE metrics (Section III-C).

In the paper's implementation each PE keeps a database storing the workload
increase rate (WIR) of every PE.  Each PE evaluates its own WIR and
propagates it -- together with the most recent WIRs in its database -- to
the other PEs using a dissemination (gossip) algorithm; one dissemination
step is performed per application iteration, and the principle of
persistence makes slightly stale values acceptable.

:class:`GossipBoard` reproduces that mechanism on flat array state: the
whole replicated database is a pair of ``(P, P)`` matrices -- ``values`` and
``versions`` -- where row ``r`` is the view of rank ``r`` and column ``s``
holds what ``r`` knows about source rank ``s`` (version ``-1`` = unknown).
One :meth:`step` performs the entire synchronous push round with a single
batched RNG draw (:func:`select_push_targets`) and a vectorized
freshest-version merge, instead of per-rank ``dict`` snapshot/merge loops.

Version tie-break rule (applied consistently):

* **freshest wins** -- a merged entry only overwrites a strictly older one;
  on equal versions the receiver keeps what it has (copies of the same
  ``(source, version)`` pair carry the same value, so this is value-neutral);
* **self-publish always wins ties** -- a rank re-publishing its own value at
  an unchanged version replaces its local entry, so the latest published
  value is what starts propagating.

Two board implementations share those semantics:

* :class:`GossipBoard` -- the **dense** board above: ``O(P^2)`` memory,
  every rank eventually knows every value, and the ULBA fast paths can read
  the full view matrix.  The right choice up to a few hundred PEs.
* :class:`SparseGossipBoard` -- the **memory-bounded** board for the large-P
  regime (P >= 1024): each rank keeps at most ``view_size`` entries
  (``O(P * view_size)`` memory total), pushes along a configurable topology
  (``random`` / ``ring`` / ``hypercube``) and evicts the stalest entries
  when a view overflows.  Views are *partial by design*; consumers must
  tolerate incomplete views (the ULBA policies already do -- their
  ``complete_matrix`` fast paths return ``None`` and degrade to the
  per-rank rule).

:func:`make_gossip_board` selects the implementation from
:attr:`GossipConfig.mode`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive_int

__all__ = [
    "BatchGossipBoard",
    "GossipConfig",
    "GossipBoard",
    "SparseGossipBoard",
    "make_gossip_board",
    "merge_pushes",
    "select_push_targets",
    "sparse_random_push_targets",
    "topology_push_targets",
]

#: Recognised board implementations (see module docstring).
GOSSIP_MODES = ("dense", "sparse")
#: Recognised push topologies of the sparse board; the dense board accepts
#: them too (``random`` keeps its historical batched ``(P, P)`` draw).
GOSSIP_TOPOLOGIES = ("random", "ring", "hypercube")


@dataclass(frozen=True)
class GossipConfig:
    """Tuning knobs of the push-gossip dissemination."""

    #: Number of peers each rank pushes its view to per step.
    fanout: int = 2
    #: When True, every rank also pushes to rank 0 every step, mimicking
    #: implementations that piggy-back metrics on an existing reduction tree
    #: (dense board with ``random`` topology only).
    include_root: bool = False
    #: Board implementation: ``"dense"`` keeps the full ``(P, P)`` view
    #: matrix, ``"sparse"`` bounds every rank's view to ``view_size`` entries
    #: (``O(P * view_size)`` memory -- the large-P execution path).
    mode: str = "dense"
    #: Push topology: ``"random"`` (uniform random peers, one batched RNG
    #: draw per round), ``"ring"`` (the ``fanout`` clockwise neighbours,
    #: deterministic) or ``"hypercube"`` (dimension-exchange partners,
    #: deterministic, completes fastest for power-of-two ``P``).
    topology: str = "random"
    #: Maximum entries a sparse view retains per rank (``None`` = unbounded,
    #: i.e. up to ``P`` entries).  Ignored by the dense board.  When a view
    #: overflows, the stalest (lowest-version) entries are evicted; a rank's
    #: own entry is never evicted.
    view_size: Optional[int] = None

    def __post_init__(self) -> None:
        check_positive_int(self.fanout, "fanout")
        if self.mode not in GOSSIP_MODES:
            raise ValueError(
                f"mode must be one of {GOSSIP_MODES}, got {self.mode!r}"
            )
        if self.topology not in GOSSIP_TOPOLOGIES:
            raise ValueError(
                f"topology must be one of {GOSSIP_TOPOLOGIES}, got {self.topology!r}"
            )
        if self.view_size is not None:
            check_positive_int(self.view_size, "view_size")
            if self.view_size < 2:
                raise ValueError(
                    "view_size must be >= 2 (a view needs the rank's own "
                    f"entry plus at least one neighbour), got {self.view_size}"
                )
        if self.include_root and (self.mode != "dense" or self.topology != "random"):
            raise ValueError(
                "include_root is only supported on the dense board with the "
                "random topology"
            )

    # ------------------------------------------------------------------
    def board_nbytes(self, num_ranks: int) -> int:
        """Steady-state bytes of one board's value/version state at ``P`` ranks.

        Dense: ``P * P * 16`` (one float64 + one int64 per entry).  Sparse:
        ``P * M * 24`` (source + value + version per retained entry, ``M``
        the effective view size).  This is what the batch engine's replica
        chunking and the large-P benchmarks budget against; transient
        per-round merge buffers are not included.
        """
        check_positive_int(num_ranks, "num_ranks")
        if self.mode == "sparse":
            m = num_ranks if self.view_size is None else min(self.view_size, num_ranks)
            return num_ranks * m * 24
        return num_ranks * num_ranks * 16


def select_push_targets(
    rng: np.random.Generator,
    num_ranks: int,
    fanout: int,
    *,
    include_root: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Select every rank's push targets for one round with one RNG draw.

    Each rank pushes to ``min(fanout, num_ranks - 1)`` distinct peers chosen
    uniformly at random (never itself).  The selection is done with a single
    batched draw: one ``(P, P)`` matrix of uniform keys whose ``fanout``
    smallest off-diagonal entries per row are the targets -- a uniformly
    random ``fanout``-subset per rank, like per-rank sampling without
    replacement, but batched.

    Returns ``(src, dst)`` index arrays of equal length: push ``e`` sends the
    view of rank ``src[e]`` to rank ``dst[e]``.  With ``include_root``, every
    rank other than 0 additionally pushes to rank 0.
    """
    check_positive_int(num_ranks, "num_ranks")
    if num_ranks == 1:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty
    k = min(fanout, num_ranks - 1)
    keys = rng.random((num_ranks, num_ranks))
    np.fill_diagonal(keys, np.inf)
    targets = np.argpartition(keys, k - 1, axis=1)[:, :k]

    src = np.repeat(np.arange(num_ranks, dtype=np.intp), k)
    dst = targets.ravel().astype(np.intp, copy=False)
    if include_root:
        # Ranks != 0 whose targets missed rank 0 push to it as well.
        missing_root = np.flatnonzero(~(targets == 0).any(axis=1))
        missing_root = missing_root[missing_root != 0]
        if missing_root.size:
            src = np.concatenate([src, missing_root.astype(np.intp)])
            dst = np.concatenate(
                [dst, np.zeros(missing_root.size, dtype=np.intp)]
            )
    return src, dst


def topology_push_targets(
    step: int, num_ranks: int, fanout: int, topology: str
) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic push edges of one round for ``ring`` / ``hypercube``.

    * ``ring``: every rank pushes to its ``fanout`` clockwise neighbours
      ``(rank + 1) ... (rank + fanout) mod P`` -- static, no RNG.
    * ``hypercube``: at round ``step`` every rank pushes to its partners
      across dimensions ``step ... step + fanout - 1`` (mod the hypercube
      dimension), i.e. ``rank XOR 2^d``; partners >= ``P`` are skipped for
      non-power-of-two ``P``.  One dimension per round with ``fanout=1``
      completes a broadcast in ``ceil(log2 P)`` rounds for power-of-two
      ``P``.

    Returns ``(src, dst)`` index arrays like :func:`select_push_targets`.
    """
    check_positive_int(num_ranks, "num_ranks")
    if num_ranks == 1:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty
    ranks = np.arange(num_ranks, dtype=np.intp)
    if topology == "ring":
        k = min(fanout, num_ranks - 1)
        offsets = np.arange(1, k + 1, dtype=np.intp)
        dst = (ranks[:, None] + offsets[None, :]) % num_ranks
        src = np.repeat(ranks, k)
        return src, dst.reshape(-1)
    if topology == "hypercube":
        dim = max(1, int(num_ranks - 1).bit_length())
        k = min(fanout, dim)
        bits = (step + np.arange(k)) % dim
        dst = ranks[:, None] ^ (1 << bits.astype(np.intp))[None, :]
        src = np.repeat(ranks, k)
        dst = dst.reshape(-1)
        valid = dst < num_ranks
        return src[valid], dst[valid]
    raise ValueError(f"no deterministic target rule for topology {topology!r}")


def sparse_random_push_targets(
    rng: np.random.Generator, num_ranks: int, fanout: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Uniform random push edges with ``O(P * fanout)`` memory.

    One batched integer draw selects ``fanout`` peers per rank (uniform over
    the other ranks, duplicates within a rank possible -- sampling *with*
    replacement, unlike the dense board's ``(P, P)``-keyed subset draw,
    whose key matrix alone would defeat the sparse board's memory bound).
    """
    check_positive_int(num_ranks, "num_ranks")
    if num_ranks == 1:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty
    k = min(fanout, num_ranks - 1)
    ranks = np.arange(num_ranks, dtype=np.intp)
    draws = rng.integers(0, num_ranks - 1, size=(num_ranks, k))
    # Shift draws at or above the drawing rank by one: uniform over the
    # other P-1 ranks, never self.
    dst = draws + (draws >= ranks[:, None])
    src = np.repeat(ranks, k)
    return src, dst.reshape(-1).astype(np.intp, copy=False)


def merge_pushes(
    values: np.ndarray, versions: np.ndarray, src: np.ndarray, dst: np.ndarray
) -> None:
    """Vectorized freshest-version merge of one round's pushes, in place.

    ``values`` / ``versions`` are ``(V, P)`` matrices whose row ``v`` is one
    *view* (what its owner knows about the ``P`` source entries); push ``e``
    sends the pre-round snapshot of row ``src[e]`` to row ``dst[e]``.  The
    same function merges a solo board (``V = P`` views) and a replica batch
    (``V = R * P`` views, rows of replica ``r`` offset by ``r * P`` -- views
    of different replicas never push to each other, so the grouped merge
    below never mixes them).

    Each push's per-entry version is packed with its push index into one
    int64 key, so a grouped ``np.maximum.reduceat`` per receiver yields both
    the freshest incoming version and a push that carries it; entries whose
    version strictly increases take that push's value.  Which of several
    equal-version pushes wins is immaterial: copies of the same ``(source,
    version)`` pair hold the same value.
    """
    num_pushes = src.shape[0]
    order = np.argsort(dst, kind="stable")
    dst_sorted = dst[order]
    boundaries = np.empty(num_pushes, dtype=bool)
    boundaries[0] = True
    np.not_equal(dst_sorted[1:], dst_sorted[:-1], out=boundaries[1:])
    group_starts = np.flatnonzero(boundaries)
    receivers = dst_sorted[group_starts]
    src_sorted = src[order]

    # key = version * num_pushes + push_position: max key <=> max version,
    # ties resolved towards later (value-identical) pushes.
    keys = versions[src_sorted] * num_pushes
    keys += np.arange(num_pushes)[:, None]
    best = np.maximum.reduceat(keys, group_starts, axis=0)
    incoming_ver = best // num_pushes

    current_ver = versions[receivers]
    improved = incoming_ver > current_ver
    if not improved.any():
        return
    # Gather only the winning pushes' values (still the pre-round state:
    # nothing has been written yet).
    entry = np.arange(values.shape[1])
    incoming_val = values[src_sorted[best % num_pushes], entry]
    values[receivers] = np.where(improved, incoming_val, values[receivers])
    versions[receivers] = np.where(improved, incoming_ver, current_ver)


class GossipBoard:
    """Replicated ``rank -> value`` board maintained by push gossip."""

    def __init__(
        self,
        num_ranks: int,
        *,
        config: Optional[GossipConfig] = None,
        seed: SeedLike = None,
    ) -> None:
        check_positive_int(num_ranks, "num_ranks")
        self.num_ranks = num_ranks
        self.config = config or GossipConfig()
        self._rng = ensure_rng(seed)
        #: ``values[r, s]`` / ``versions[r, s]``: what rank ``r`` knows about
        #: source rank ``s``; version -1 marks an unknown entry.
        self._values = np.zeros((num_ranks, num_ranks), dtype=float)
        self._versions = np.full((num_ranks, num_ranks), -1, dtype=np.int64)
        self._steps = 0
        # Completeness is monotone (versions never regress), so the check is
        # cached once it first succeeds.
        self._complete = False

    # ------------------------------------------------------------------
    @property
    def steps(self) -> int:
        """Number of dissemination steps performed so far."""
        return self._steps

    def publish(self, rank: int, value: float, *, version: Optional[int] = None) -> None:
        """Rank ``rank`` publishes a new ``value`` for itself.

        ``version`` defaults to the current step count, so values published
        later always win over older ones when views merge.  A self-publish
        at the *same* version also wins (ties go to the owner), so the
        latest value published within a step is the one disseminated.
        Explicit versions must be >= 0 (-1 is the internal "unknown"
        sentinel).
        """
        self._check_rank(rank)
        v = self._steps if version is None else int(version)
        if v < 0:
            raise ValueError(f"version must be >= 0, got {v}")
        if v >= self._versions[rank, rank]:
            self._values[rank, rank] = float(value)
            self._versions[rank, rank] = v

    def publish_all(
        self, values: np.ndarray, *, version: Optional[int] = None
    ) -> None:
        """Every rank publishes its own value in one vectorized update.

        Equivalent to ``publish(r, values[r])`` for every rank ``r``, with a
        single diagonal write instead of ``P`` Python calls.
        """
        values = np.asarray(values, dtype=float)
        if values.shape != (self.num_ranks,):
            raise ValueError(
                f"values must have one entry per rank ({self.num_ranks}), "
                f"got {values.shape}"
            )
        v = self._steps if version is None else int(version)
        if v < 0:
            raise ValueError(f"version must be >= 0, got {v}")
        diag = np.arange(self.num_ranks)
        mask = v >= self._versions[diag, diag]
        idx = diag[mask]
        self._values[idx, idx] = values[mask]
        self._versions[idx, idx] = v

    def local_view(self, rank: int) -> Dict[int, float]:
        """The values rank ``rank`` currently knows, keyed by source rank."""
        self._check_rank(rank)
        known = np.flatnonzero(self._versions[rank] >= 0)
        row = self._values[rank]
        return {int(src): float(row[src]) for src in known}

    def known_mask(self, rank: int) -> np.ndarray:
        """Boolean mask of the source ranks whose value ``rank`` knows."""
        self._check_rank(rank)
        return self._versions[rank] >= 0

    def known_values_row(self, rank: int) -> np.ndarray:
        """The values ``rank`` knows, compacted in ascending source order.

        Same numbers as ``local_view(rank).values()`` without building the
        dictionary -- the hot path of the ULBA per-rank overload rule.
        """
        self._check_rank(rank)
        return self._values[rank][self._versions[rank] >= 0]

    def values_row(self, rank: int) -> np.ndarray:
        """Raw value row of ``rank`` (entries only valid where known)."""
        self._check_rank(rank)
        return self._values[rank]

    def known_fraction(self, rank: int) -> float:
        """Fraction of ranks whose value is known by ``rank``."""
        self._check_rank(rank)
        return float((self._versions[rank] >= 0).sum()) / self.num_ranks

    def own_value(self, rank: int) -> Optional[float]:
        """The value ``rank`` published for itself, if any."""
        self._check_rank(rank)
        if self._versions[rank, rank] < 0:
            return None
        return float(self._values[rank, rank])

    def is_complete(self) -> bool:
        """True when every rank knows a value for every other rank."""
        if not self._complete:
            self._complete = bool((self._versions >= 0).all())
        return self._complete

    def complete_matrix(self) -> Optional[np.ndarray]:
        """The full ``(P, P)`` view matrix once every entry is known.

        Row ``r`` is rank ``r``'s complete view in ascending source order --
        the same numbers every per-rank dict view would yield.  Returns
        ``None`` while any entry is still unknown.  The array is internal
        state: callers must treat it as read-only.
        """
        return self._values if self.is_complete() else None

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Perform one push-gossip dissemination round.

        With the (default) ``random`` topology each rank selects ``fanout``
        distinct random peers (one batched RNG draw for the whole round);
        the deterministic ``ring`` / ``hypercube`` topologies consume no
        randomness.  Every rank pushes its whole view; receivers keep the
        freshest version of each entry.  The pushes of a round are based on
        the views at the *start* of the round (synchronous gossip), matching
        one dissemination step per application iteration.
        """
        if self.config.topology == "random":
            src, dst = select_push_targets(
                self._rng,
                self.num_ranks,
                self.config.fanout,
                include_root=self.config.include_root,
            )
        else:
            src, dst = topology_push_targets(
                self._steps, self.num_ranks, self.config.fanout, self.config.topology
            )
        if src.size:
            self._merge_pushes(src, dst)
        self._steps += 1

    def run_until_complete(self, max_steps: int = 1_000) -> int:
        """Gossip until every rank knows every value; returns the step count."""
        check_positive_int(max_steps, "max_steps")
        initial = self._steps
        while not self.is_complete():
            if self._steps - initial >= max_steps:
                raise RuntimeError(
                    f"gossip did not converge within {max_steps} steps; "
                    "did every rank publish a value?"
                )
            self.step()
        return self._steps - initial

    # ------------------------------------------------------------------
    def _merge_pushes(self, src: np.ndarray, dst: np.ndarray) -> None:
        """One round's freshest-version merge (see :func:`merge_pushes`)."""
        merge_pushes(self._values, self._versions, src, dst)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} outside [0, {self.num_ranks})")


class SparseGossipBoard:
    """Memory-bounded ``rank -> value`` board for the large-P regime.

    The dense :class:`GossipBoard` stores the fully replicated database as a
    ``(P, P)`` matrix pair -- 256 MiB of board state alone at ``P = 4096``
    and quadratic beyond, which caps experiments at a few hundred PEs.  This
    board bounds every rank's view to at most ``view_size`` entries, stored
    as three ``(P, view_size)`` arrays (source rank, value, version; source
    ``-1`` marks an empty slot), so total memory is ``O(P * view_size)``
    regardless of cluster size.

    The merge semantics are shared with the dense board: a pushed entry only
    overwrites a strictly older one, the receiver keeps its entry on version
    ties, and a self-publish at an unchanged version always wins.  What the
    bounded view adds is **eviction**: when a merged view exceeds
    ``view_size`` entries, the freshest ``view_size - 1`` non-self entries
    are retained (ties broken towards lower source ranks, so eviction is
    deterministic) and a rank's own entry -- pinned in slot 0 -- is never
    evicted.  Views are therefore *partial by design* and consumers must
    treat them like early-phase dense gossip views (the ULBA policies
    already do); :meth:`complete_matrix` returns ``None`` whenever the view
    bound can hide entries, which makes the dense fast paths degrade
    gracefully instead of reading a wrong matrix.

    Push targets come from :attr:`GossipConfig.topology`: ``random`` draws
    ``fanout`` uniform peers per rank with one batched ``(P, fanout)``
    integer draw per round (bounded memory, unlike the dense board's
    ``(P, P)`` key matrix), ``ring`` and ``hypercube`` are deterministic.
    """

    def __init__(
        self,
        num_ranks: int,
        *,
        config: Optional[GossipConfig] = None,
        seed: SeedLike = None,
    ) -> None:
        check_positive_int(num_ranks, "num_ranks")
        self.num_ranks = num_ranks
        self.config = config or GossipConfig(mode="sparse")
        self._rng = ensure_rng(seed)
        m = self.config.view_size
        #: Effective per-rank view bound (never useful beyond ``P``).
        self.view_size = num_ranks if m is None else min(m, num_ranks)
        # Row r holds rank r's bounded view; slot 0 is pinned to rank r
        # itself (version -1 until it publishes).
        self._src = np.full((num_ranks, self.view_size), -1, dtype=np.int64)
        self._val = np.zeros((num_ranks, self.view_size), dtype=float)
        self._ver = np.full((num_ranks, self.view_size), -1, dtype=np.int64)
        self._src[:, 0] = np.arange(num_ranks)
        self._steps = 0
        self._complete = False

    # ------------------------------------------------------------------
    @property
    def steps(self) -> int:
        """Number of dissemination steps performed so far."""
        return self._steps

    @property
    def nbytes(self) -> int:
        """Bytes of the board's steady-state view arrays."""
        return int(self._src.nbytes + self._val.nbytes + self._ver.nbytes)

    def publish(self, rank: int, value: float, *, version: Optional[int] = None) -> None:
        """Rank ``rank`` publishes a new ``value`` for itself.

        Same contract as :meth:`GossipBoard.publish`: the version defaults
        to the step count, and a self-publish at an unchanged version wins.
        """
        self._check_rank(rank)
        v = self._steps if version is None else int(version)
        if v < 0:
            raise ValueError(f"version must be >= 0, got {v}")
        if v >= self._ver[rank, 0]:
            self._val[rank, 0] = float(value)
            self._ver[rank, 0] = v

    def publish_all(
        self, values: np.ndarray, *, version: Optional[int] = None
    ) -> None:
        """Every rank publishes its own value in one vectorized update."""
        values = np.asarray(values, dtype=float)
        if values.shape != (self.num_ranks,):
            raise ValueError(
                f"values must have one entry per rank ({self.num_ranks}), "
                f"got {values.shape}"
            )
        v = self._steps if version is None else int(version)
        if v < 0:
            raise ValueError(f"version must be >= 0, got {v}")
        mask = v >= self._ver[:, 0]
        self._val[mask, 0] = values[mask]
        self._ver[mask, 0] = v

    # ------------------------------------------------------------------
    def local_view(self, rank: int) -> Dict[int, float]:
        """The values rank ``rank`` currently knows, keyed by source rank."""
        self._check_rank(rank)
        valid = np.flatnonzero(self._ver[rank] >= 0)
        srcs = self._src[rank, valid]
        vals = self._val[rank, valid]
        order = np.argsort(srcs)
        return {int(srcs[i]): float(vals[i]) for i in order}

    def known_mask(self, rank: int) -> np.ndarray:
        """Boolean mask over source ranks whose value ``rank`` knows."""
        self._check_rank(rank)
        mask = np.zeros(self.num_ranks, dtype=bool)
        mask[self._src[rank][self._ver[rank] >= 0]] = True
        return mask

    def known_values_row(self, rank: int) -> np.ndarray:
        """The values ``rank`` knows, compacted in ascending source order.

        Same contract as :meth:`GossipBoard.known_values_row` (the ULBA hot
        path); the slots are stored by freshness, so a small sort by source
        restores the canonical order.
        """
        self._check_rank(rank)
        valid = self._ver[rank] >= 0
        srcs = self._src[rank][valid]
        return self._val[rank][valid][np.argsort(srcs)]

    def own_value(self, rank: int) -> Optional[float]:
        """The value ``rank`` published for itself, if any."""
        self._check_rank(rank)
        if self._ver[rank, 0] < 0:
            return None
        return float(self._val[rank, 0])

    def known_fraction(self, rank: int) -> float:
        """Fraction of ranks whose value is known by ``rank``."""
        self._check_rank(rank)
        return float((self._ver[rank] >= 0).sum()) / self.num_ranks

    def is_complete(self) -> bool:
        """True when every rank knows every value (requires an unbounded view)."""
        if self.view_size < self.num_ranks:
            return False
        if not self._complete:
            self._complete = bool((self._ver >= 0).all())
        return self._complete

    def complete_matrix(self) -> Optional[np.ndarray]:
        """The full ``(P, P)`` view matrix, or ``None`` while any view is partial.

        Only an unbounded sparse board (``view_size >= P``) can ever be
        complete; a bounded board always returns ``None`` here, which is
        exactly what makes the dense fast paths (e.g.
        :meth:`repro.lb.wir.OverloadDetector.overloading_mask_from_views`)
        degrade gracefully to the per-rank rule.  Unlike the dense board
        this materializes a fresh matrix per call; callers cache it per LB
        step.
        """
        if not self.is_complete():
            return None
        rows = np.repeat(np.arange(self.num_ranks), self.view_size)
        matrix = np.empty((self.num_ranks, self.num_ranks), dtype=float)
        matrix[rows, self._src.reshape(-1)] = self._val.reshape(-1)
        return matrix

    # ------------------------------------------------------------------
    def step(self) -> None:
        """One synchronous push round: select targets, merge, evict.

        All pushes of a round see the views at the start of the round, like
        the dense board.  The whole round is a constant number of array
        passes over ``O(P * fanout * view_size)`` candidate entries -- no
        ``(P, P)`` operand is ever formed.
        """
        if self.num_ranks > 1:
            if self.config.topology == "random":
                src, dst = sparse_random_push_targets(
                    self._rng, self.num_ranks, self.config.fanout
                )
            else:
                src, dst = topology_push_targets(
                    self._steps, self.num_ranks, self.config.fanout, self.config.topology
                )
            if src.size:
                self._merge(src, dst)
        self._steps += 1

    def run_until_complete(self, max_steps: int = 1_000) -> int:
        """Gossip until every rank knows every value; returns the step count.

        Only meaningful on an unbounded board: with ``view_size < P`` a view
        can never hold all entries and the call raises immediately.
        """
        check_positive_int(max_steps, "max_steps")
        if self.view_size < self.num_ranks:
            raise RuntimeError(
                f"a bounded view (view_size={self.view_size} < {self.num_ranks} "
                "ranks) can never become complete"
            )
        initial = self._steps
        while not self.is_complete():
            if self._steps - initial >= max_steps:
                raise RuntimeError(
                    f"gossip did not converge within {max_steps} steps; "
                    "did every rank publish a value?"
                )
            self.step()
        return self._steps - initial

    # ------------------------------------------------------------------
    def _merge(self, push_src: np.ndarray, push_dst: np.ndarray) -> None:
        """Freshest-version merge + bounded eviction of one round's pushes.

        Candidate entries are every receiver's current entries plus every
        slot of each pushed view.  Per ``(receiver, source)`` pair the
        freshest version survives, with the receiver's existing entry
        winning ties (value-neutral, as in :func:`merge_pushes`).  Per
        receiver, the own entry is pinned to slot 0 and the freshest
        ``view_size - 1`` other entries are retained (version ties evict
        higher source ranks first).
        """
        num_ranks, m = self.num_ranks, self.view_size

        # Candidate pool: existing entries first (lower priority bit wins
        # version ties for the receiver's own copy).
        recv = np.concatenate(
            [
                np.repeat(np.arange(num_ranks, dtype=np.int64), m),
                np.repeat(push_dst.astype(np.int64), m),
            ]
        )
        src = np.concatenate([self._src.reshape(-1), self._src[push_src].reshape(-1)])
        val = np.concatenate([self._val.reshape(-1), self._val[push_src].reshape(-1)])
        ver = np.concatenate([self._ver.reshape(-1), self._ver[push_src].reshape(-1)])
        existing = np.zeros(recv.size, dtype=bool)
        existing[: num_ranks * m] = True

        known = ver >= 0
        recv, src, val, ver, existing = (
            recv[known],
            src[known],
            val[known],
            ver[known],
            existing[known],
        )
        if recv.size == 0:
            return

        # Dedupe per (receiver, source): after the lexsort the last element
        # of each group carries the max (version, existing) pair, i.e. the
        # freshest version with receiver-keeps-ties semantics.
        pair = recv * num_ranks + src
        order = np.lexsort((existing, ver, pair))
        pair_sorted = pair[order]
        last = np.empty(pair_sorted.size, dtype=bool)
        last[-1] = True
        np.not_equal(pair_sorted[1:], pair_sorted[:-1], out=last[:-1])
        winners = order[last]
        recv, src, val, ver = recv[winners], src[winners], val[winners], ver[winners]

        new_src = np.full((num_ranks, m), -1, dtype=np.int64)
        new_val = np.zeros((num_ranks, m), dtype=float)
        new_ver = np.full((num_ranks, m), -1, dtype=np.int64)
        new_src[:, 0] = np.arange(num_ranks)

        self_mask = src == recv
        self_recv = recv[self_mask]
        new_val[self_recv, 0] = val[self_mask]
        new_ver[self_recv, 0] = ver[self_mask]

        other = ~self_mask
        o_recv, o_src = recv[other], src[other]
        o_val, o_ver = val[other], ver[other]
        if o_recv.size:
            # Freshest (view_size - 1) other entries per receiver: sort by
            # (receiver, -version, source) and keep the first m-1 positions
            # of each receiver group.
            order = np.lexsort((o_src, -o_ver, o_recv))
            recv_sorted = o_recv[order]
            boundary = np.empty(recv_sorted.size, dtype=bool)
            boundary[0] = True
            np.not_equal(recv_sorted[1:], recv_sorted[:-1], out=boundary[1:])
            starts = np.flatnonzero(boundary)
            group = np.cumsum(boundary) - 1
            pos = np.arange(recv_sorted.size) - starts[group]
            keep = pos < m - 1
            kept = order[keep]
            slot = pos[keep] + 1
            new_src[o_recv[kept], slot] = o_src[kept]
            new_val[o_recv[kept], slot] = o_val[kept]
            new_ver[o_recv[kept], slot] = o_ver[kept]

        self._src, self._val, self._ver = new_src, new_val, new_ver

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} outside [0, {self.num_ranks})")


def make_gossip_board(
    num_ranks: int,
    *,
    config: Optional[GossipConfig] = None,
    seed: SeedLike = None,
) -> "GossipBoard | SparseGossipBoard":
    """Build the board implementation selected by ``config.mode``.

    ``dense`` (the default) returns the exact historical
    :class:`GossipBoard` -- bit-identical RNG stream and merges -- so
    existing seeded runs are unaffected; ``sparse`` returns the
    memory-bounded :class:`SparseGossipBoard`.
    """
    cfg = config or GossipConfig()
    if cfg.mode == "sparse":
        return SparseGossipBoard(num_ranks, config=cfg, seed=seed)
    return GossipBoard(num_ranks, config=cfg, seed=seed)


class BatchGossipBoard:
    """``R`` independent gossip boards advanced in lock step, batched.

    The replica-batched execution engine (:mod:`repro.batch`) runs ``R``
    seeded replicas of one configuration; each replica owns an independent
    gossip board with its own RNG stream.  This class stores all of them as
    one ``(R, P, P)`` value/version pair and performs the per-round work --
    target selection and the freshest-version merge -- as single batched
    array operations over every replica at once.

    Bit-identical to ``R`` solo boards: each replica's peer selection
    consumes its own generator exactly like a solo
    :class:`GossipBoard` seeded the same way (one ``(P, P)`` uniform draw
    per round), the stacked draws go through one vectorized batched
    selection, and each replica's round merge applies the same
    freshest-version rule as :func:`merge_pushes` (any winner difference on
    version ties is value-neutral).

    Parameters
    ----------
    num_ranks:
        PEs per replica (``P``).
    seeds:
        One seed (or ready generator) per replica; the batch width ``R`` is
        the length of this sequence.
    config:
        Shared :class:`GossipConfig` of all replicas.
    """

    def __init__(
        self,
        num_ranks: int,
        seeds: Sequence[SeedLike],
        *,
        config: Optional[GossipConfig] = None,
    ) -> None:
        check_positive_int(num_ranks, "num_ranks")
        if len(seeds) == 0:
            raise ValueError("seeds must name at least one replica")
        self.num_ranks = num_ranks
        self.num_replicas = len(seeds)
        self.config = config or GossipConfig()
        self._rngs: List[np.random.Generator] = [ensure_rng(s) for s in seeds]
        self._values = np.zeros(
            (self.num_replicas, num_ranks, num_ranks), dtype=float
        )
        self._versions = np.full(
            (self.num_replicas, num_ranks, num_ranks), -1, dtype=np.int64
        )
        self._steps = 0
        # Per-replica completeness is monotone; cached once reached.
        self._replica_complete = np.zeros(self.num_replicas, dtype=bool)

    # ------------------------------------------------------------------
    @property
    def steps(self) -> int:
        """Number of dissemination steps performed so far (all replicas)."""
        return self._steps

    def publish_all(
        self, values: np.ndarray, *, version: Optional[int] = None
    ) -> None:
        """Every rank of every replica publishes its own value.

        ``values`` is ``(R, P)``; equivalent to
        ``board_r.publish_all(values[r])`` on ``R`` solo boards.
        """
        values = np.asarray(values, dtype=float)
        expected = (self.num_replicas, self.num_ranks)
        if values.shape != expected:
            raise ValueError(
                f"values must be (replicas, ranks) = {expected}, got {values.shape}"
            )
        v = self._steps if version is None else int(version)
        if v < 0:
            raise ValueError(f"version must be >= 0, got {v}")
        diag = np.arange(self.num_ranks)
        diag_versions = self._versions[:, diag, diag]
        rep_idx, rank_idx = np.nonzero(v >= diag_versions)
        self._values[rep_idx, rank_idx, rank_idx] = values[rep_idx, rank_idx]
        self._versions[rep_idx, rank_idx, rank_idx] = v

    def local_view(self, replica: int, rank: int) -> Dict[int, float]:
        """The values rank ``rank`` of ``replica`` knows, keyed by source."""
        self._check_indices(replica, rank)
        known = np.flatnonzero(self._versions[replica, rank] >= 0)
        row = self._values[replica, rank]
        return {int(src): float(row[src]) for src in known}

    def known_values_row(self, replica: int, rank: int) -> np.ndarray:
        """Compacted known values of one rank (ascending source order)."""
        self._check_indices(replica, rank)
        row = self._values[replica, rank]
        return row[self._versions[replica, rank] >= 0]

    def own_value(self, replica: int, rank: int) -> Optional[float]:
        """The value ``rank`` of ``replica`` published for itself, if any."""
        self._check_indices(replica, rank)
        if self._versions[replica, rank, rank] < 0:
            return None
        return float(self._values[replica, rank, rank])

    def is_complete(self) -> bool:
        """True when every rank of every replica knows every value."""
        return all(self.replica_complete(r) for r in range(self.num_replicas))

    def replica_complete(self, replica: int) -> bool:
        """True when every rank of ``replica`` knows every value."""
        if not self._replica_complete[replica]:
            self._replica_complete[replica] = bool(
                (self._versions[replica] >= 0).all()
            )
        return bool(self._replica_complete[replica])

    def complete_matrix(self, replica: int) -> Optional[np.ndarray]:
        """One replica's full ``(P, P)`` view matrix, or None while partial.

        Same contract as :meth:`GossipBoard.complete_matrix`; read-only.
        """
        self._check_indices(replica, 0)
        return self._values[replica] if self.replica_complete(replica) else None

    # ------------------------------------------------------------------
    def step(self) -> None:
        """One synchronous push round across every replica.

        With the (default) ``random`` topology, per replica the RNG
        consumption matches a solo board exactly (one ``(P, P)`` uniform
        draw); the selection of every replica's targets is one stacked
        vectorized pass over the ``(R, P, P)`` keys, and the merges run per
        replica on shared pre-packed versions (cache-resident ``(P, P)``
        operands).  The deterministic ``ring`` / ``hypercube`` topologies
        share one edge list across all replicas (no RNG), exactly like the
        solo board, so batch replicas stay bit-identical to solo boards
        under every topology.
        """
        num_ranks = self.num_ranks
        if num_ranks > 1 and self.config.topology != "random":
            src, dst = topology_push_targets(
                self._steps, num_ranks, self.config.fanout, self.config.topology
            )
            if src.size:
                shift = max(1, int(src.shape[0] - 1).bit_length())
                packed = np.left_shift(self._versions, shift)
                entry = np.arange(num_ranks)
                for rep in range(self.num_replicas):
                    self._merge_replica(rep, src, dst, packed[rep], shift, entry)
            self._steps += 1
            return
        if num_ranks > 1:
            k = min(self.config.fanout, num_ranks - 1)
            keys = np.stack(
                [rng.random((num_ranks, num_ranks)) for rng in self._rngs]
            )
            diag = np.arange(num_ranks)
            keys[:, diag, diag] = np.inf
            if k <= 3:
                # k repeated argmin passes select exactly the k smallest
                # keys per lane (the same set argpartition yields, in a
                # different order -- which push is enumerated first only
                # affects value-neutral merge tie-breaks).  Vectorized mins
                # are several times faster than introselect here.
                mins = []
                for _ in range(k):
                    low = keys.argmin(axis=2)
                    mins.append(low)
                    np.put_along_axis(keys, low[:, :, None], np.inf, axis=2)
                targets = np.stack(mins, axis=2)
            else:
                targets = np.argpartition(keys, k - 1, axis=2)[:, :, :k]

            # Per-replica local edges: the fanout sources are the same for
            # every replica, only the targets differ.  Versions are packed
            # once for the whole batch ((version << s) | edge index), and
            # each replica merges inside its own (P, P) board -- small
            # enough to stay cache-resident, which measures faster than one
            # flattened (R*P, P) merge over megabyte-sized operands.
            src = np.repeat(np.arange(num_ranks, dtype=np.intp), k)
            max_edges = src.shape[0] + (
                num_ranks if self.config.include_root else 0
            )
            shift = max(1, int(max_edges - 1).bit_length())
            packed = np.left_shift(self._versions, shift)
            entry = np.arange(num_ranks)
            for rep in range(self.num_replicas):
                rep_src = src
                rep_dst = targets[rep].reshape(-1).astype(np.intp)
                if self.config.include_root:
                    missing = np.flatnonzero(~(targets[rep] == 0).any(axis=1))
                    missing = missing[missing != 0]
                    if missing.size:
                        rep_src = np.concatenate([src, missing.astype(np.intp)])
                        rep_dst = np.concatenate(
                            [rep_dst, np.zeros(missing.size, dtype=np.intp)]
                        )
                self._merge_replica(rep, rep_src, rep_dst, packed[rep], shift, entry)
        self._steps += 1

    def _merge_replica(
        self,
        rep: int,
        src: np.ndarray,
        dst: np.ndarray,
        packed: np.ndarray,
        shift: int,
        entry: np.ndarray,
    ) -> None:
        """One replica's grouped freshest-version merge.

        Same semantics as :func:`merge_pushes` (per-receiver freshest
        version; equal-version winners are value-identical) with a cheaper
        key scheme for the batch hot loop: versions arrive pre-shifted
        (``packed``), the packed key is ``(version << s) | edge_index``,
        and unpacking is two bit operations instead of an int64 division
        and modulo.  Shift-packing preserves the lexicographic (version,
        edge) order, so merged versions are identical to
        :func:`merge_pushes` and any winner difference on version ties is
        value-neutral.
        """
        num_pushes = src.shape[0]
        versions = self._versions[rep]
        values = self._values[rep]

        order = np.argsort(dst, kind="stable")
        dst_sorted = dst[order]
        boundaries = np.empty(num_pushes, dtype=bool)
        boundaries[0] = True
        np.not_equal(dst_sorted[1:], dst_sorted[:-1], out=boundaries[1:])
        group_starts = np.flatnonzero(boundaries)
        receivers = dst_sorted[group_starts]
        src_sorted = src[order]

        keys = packed[src_sorted]
        keys += np.arange(num_pushes, dtype=np.int64)[:, None]
        best = np.maximum.reduceat(keys, group_starts, axis=0)
        incoming_ver = best >> shift

        current_ver = versions[receivers]
        improved = incoming_ver > current_ver
        if not improved.any():
            return
        winner = best & ((1 << shift) - 1)
        incoming_val = values[src_sorted[winner], entry]
        values[receivers] = np.where(improved, incoming_val, values[receivers])
        versions[receivers] = np.where(improved, incoming_ver, current_ver)

    def _check_indices(self, replica: int, rank: int) -> None:
        if not 0 <= replica < self.num_replicas:
            raise ValueError(f"replica {replica} outside [0, {self.num_replicas})")
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} outside [0, {self.num_ranks})")
