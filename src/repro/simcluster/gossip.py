"""Gossip-based dissemination of per-PE metrics (Section III-C).

In the paper's implementation each PE keeps a database storing the workload
increase rate (WIR) of every PE.  Each PE evaluates its own WIR and
propagates it -- together with the most recent WIRs in its database -- to
the other PEs using a dissemination (gossip) algorithm; one dissemination
step is performed per application iteration, and the principle of
persistence makes slightly stale values acceptable.

:class:`GossipBoard` reproduces that mechanism: every rank holds a local view
``rank -> (value, version)``; at every :meth:`step` each rank pushes its view
to ``fanout`` random peers, and entries with higher versions overwrite older
ones.  The board is deliberately independent of what the value means, so it
is reused for the WIR database and tested on synthetic data (convergence in
``O(log P)`` rounds with high probability).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive_int

__all__ = ["GossipConfig", "GossipBoard"]


@dataclass(frozen=True)
class GossipConfig:
    """Tuning knobs of the push-gossip dissemination."""

    #: Number of random peers each rank pushes its view to per step.
    fanout: int = 2
    #: When True, every rank also pushes to rank 0 every step, mimicking
    #: implementations that piggy-back metrics on an existing reduction tree.
    include_root: bool = False

    def __post_init__(self) -> None:
        check_positive_int(self.fanout, "fanout")


class GossipBoard:
    """Replicated ``rank -> value`` board maintained by push gossip."""

    def __init__(
        self,
        num_ranks: int,
        *,
        config: Optional[GossipConfig] = None,
        seed: SeedLike = None,
    ) -> None:
        check_positive_int(num_ranks, "num_ranks")
        self.num_ranks = num_ranks
        self.config = config or GossipConfig()
        self._rng = ensure_rng(seed)
        #: ``views[r]`` maps source rank -> (value, version) as known by rank r.
        self._views: List[Dict[int, Tuple[float, int]]] = [
            {} for _ in range(num_ranks)
        ]
        self._steps = 0

    # ------------------------------------------------------------------
    @property
    def steps(self) -> int:
        """Number of dissemination steps performed so far."""
        return self._steps

    def publish(self, rank: int, value: float, *, version: Optional[int] = None) -> None:
        """Rank ``rank`` publishes a new ``value`` for itself.

        ``version`` defaults to the current step count, so values published
        later always win over older ones when views merge.
        """
        self._check_rank(rank)
        v = self._steps if version is None else int(version)
        current = self._views[rank].get(rank)
        if current is None or v >= current[1]:
            self._views[rank][rank] = (float(value), v)

    def local_view(self, rank: int) -> Dict[int, float]:
        """The values rank ``rank`` currently knows, keyed by source rank."""
        self._check_rank(rank)
        return {src: value for src, (value, _version) in self._views[rank].items()}

    def known_fraction(self, rank: int) -> float:
        """Fraction of ranks whose value is known by ``rank``."""
        self._check_rank(rank)
        return len(self._views[rank]) / self.num_ranks

    def is_complete(self) -> bool:
        """True when every rank knows a value for every other rank."""
        return all(len(view) == self.num_ranks for view in self._views)

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Perform one push-gossip dissemination round.

        Each rank selects ``fanout`` distinct random peers and pushes its
        whole view; receivers keep the freshest version of each entry.  The
        pushes of a round are based on the views at the *start* of the round
        (synchronous gossip), matching one dissemination step per
        application iteration.
        """
        snapshot = [dict(view) for view in self._views]
        for src in range(self.num_ranks):
            targets = self._select_targets(src)
            for dst in targets:
                self._merge_into(dst, snapshot[src])
        self._steps += 1

    def run_until_complete(self, max_steps: int = 1_000) -> int:
        """Gossip until every rank knows every value; returns the step count."""
        check_positive_int(max_steps, "max_steps")
        initial = self._steps
        while not self.is_complete():
            if self._steps - initial >= max_steps:
                raise RuntimeError(
                    f"gossip did not converge within {max_steps} steps; "
                    "did every rank publish a value?"
                )
            self.step()
        return self._steps - initial

    # ------------------------------------------------------------------
    def _select_targets(self, src: int) -> List[int]:
        if self.num_ranks == 1:
            return []
        fanout = min(self.config.fanout, self.num_ranks - 1)
        candidates = [r for r in range(self.num_ranks) if r != src]
        chosen = self._rng.choice(len(candidates), size=fanout, replace=False)
        targets = [candidates[int(i)] for i in np.atleast_1d(chosen)]
        if self.config.include_root and src != 0 and 0 not in targets:
            targets.append(0)
        return targets

    def _merge_into(self, dst: int, incoming: Dict[int, Tuple[float, int]]) -> None:
        view = self._views[dst]
        for src, (value, version) in incoming.items():
            current = view.get(src)
            if current is None or version > current[1]:
                view[src] = (value, version)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} outside [0, {self.num_ranks})")
