"""Simulated processing elements (PEs).

A :class:`ProcessingElement` models one MPI rank of the paper's experiments:
it has a clock, a compute speed in FLOP/s, and accounting of how much of its
virtual lifetime was spent computing (busy) versus waiting in collectives
(idle).  The busy/total ratio per iteration is what Figure 4b plots as
"average PE utilization".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.simcluster.clock import VirtualClock
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["ProcessingElement"]


@dataclass
class ProcessingElement:
    """One simulated processing element.

    Parameters
    ----------
    rank:
        MPI-style rank identifier, ``0 <= rank < cluster size``.
    speed:
        Compute speed in FLOP per second (paper: ``omega``).
    clock:
        The PE's virtual clock; a fresh one is created when omitted.
    """

    rank: int
    speed: float = 1.0e9
    clock: VirtualClock = field(default_factory=VirtualClock)
    #: Cumulative virtual seconds spent computing.
    busy_time: float = 0.0
    #: Cumulative virtual seconds spent in load-balancing steps.
    lb_time: float = 0.0

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")
        check_positive(self.speed, "speed")
        check_non_negative(self.busy_time, "busy_time")
        check_non_negative(self.lb_time, "lb_time")

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time of this PE."""
        return self.clock.now

    def compute(self, flops: float) -> float:
        """Execute ``flops`` FLOP of work; returns the elapsed virtual seconds."""
        if flops < 0:
            raise ValueError(f"flops must be >= 0, got {flops}")
        elapsed = flops / self.speed
        self.clock.advance(elapsed)
        self.busy_time += elapsed
        return elapsed

    def spend(self, seconds: float, *, busy: bool = False, lb: bool = False) -> float:
        """Advance the clock by ``seconds`` of non-compute activity.

        ``busy=True`` counts the time towards the utilization numerator
        (useful for modelling non-FLOP work such as data migration performed
        by this PE); ``lb=True`` accounts it as load-balancing time.
        """
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        self.clock.advance(seconds)
        if busy:
            self.busy_time += seconds
        if lb:
            self.lb_time += seconds
        return seconds

    def utilization(self, *, since: float = 0.0, until: Optional[float] = None) -> float:
        """Busy fraction of the window ``[since, until]`` (``until`` = now).

        Note: the PE does not keep a full activity timeline, so this is the
        lifetime utilization when the window covers the whole run; windowed
        per-iteration utilization is computed by
        :class:`repro.simcluster.tracing.ClusterTrace` from snapshots.
        """
        end = self.now if until is None else until
        window = end - since
        if window <= 0:
            return 1.0
        return min(1.0, self.busy_time / window)

    def reset(self) -> None:
        """Reset clock and accounting (used between experiment repetitions)."""
        self.clock.reset()
        self.busy_time = 0.0
        self.lb_time = 0.0
