"""Simulated processing elements (PEs).

A :class:`ProcessingElement` models one MPI rank of the paper's experiments:
it has a clock, a compute speed in FLOP/s, and accounting of how much of its
virtual lifetime was spent computing (busy) versus waiting in collectives
(idle).  The busy/total ratio per iteration is what Figure 4b plots as
"average PE utilization".

Two representations coexist:

* :class:`ProcessingElement` -- the standalone object, convenient for unit
  tests and for code that manipulates a single simulated rank;
* :class:`PEStateArrays` + :class:`ProcessingElementView` -- flat NumPy
  state vectors (clock, busy time, LB time) shared by all PEs of a
  :class:`~repro.simcluster.cluster.VirtualCluster`, with thin per-rank
  views preserving the ``ProcessingElement`` API.  The cluster's hot paths
  operate on the arrays directly; the views exist for compatibility with
  code (and tests) that addresses individual PEs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.simcluster.clock import VirtualClock
from repro.utils.validation import check_non_negative, check_positive, check_positive_int

__all__ = ["PEStateArrays", "ProcessingElement", "ProcessingElementView"]


@dataclass
class ProcessingElement:
    """One simulated processing element.

    Parameters
    ----------
    rank:
        MPI-style rank identifier, ``0 <= rank < cluster size``.
    speed:
        Compute speed in FLOP per second (paper: ``omega``).
    clock:
        The PE's virtual clock; a fresh one is created when omitted.
    """

    rank: int
    speed: float = 1.0e9
    clock: VirtualClock = field(default_factory=VirtualClock)
    #: Cumulative virtual seconds spent computing.
    busy_time: float = 0.0
    #: Cumulative virtual seconds spent in load-balancing steps.
    lb_time: float = 0.0

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")
        check_positive(self.speed, "speed")
        check_non_negative(self.busy_time, "busy_time")
        check_non_negative(self.lb_time, "lb_time")

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time of this PE."""
        return self.clock.now

    def compute(self, flops: float) -> float:
        """Execute ``flops`` FLOP of work; returns the elapsed virtual seconds."""
        if flops < 0:
            raise ValueError(f"flops must be >= 0, got {flops}")
        elapsed = flops / self.speed
        self.clock.advance(elapsed)
        self.busy_time += elapsed
        return elapsed

    def spend(self, seconds: float, *, busy: bool = False, lb: bool = False) -> float:
        """Advance the clock by ``seconds`` of non-compute activity.

        ``busy=True`` counts the time towards the utilization numerator
        (useful for modelling non-FLOP work such as data migration performed
        by this PE); ``lb=True`` accounts it as load-balancing time.
        """
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        self.clock.advance(seconds)
        if busy:
            self.busy_time += seconds
        if lb:
            self.lb_time += seconds
        return seconds

    def utilization(self, *, since: float = 0.0, until: Optional[float] = None) -> float:
        """Busy fraction of the window ``[since, until]`` (``until`` = now).

        Note: the PE does not keep a full activity timeline, so this is the
        lifetime utilization when the window covers the whole run; windowed
        per-iteration utilization is computed by
        :class:`repro.simcluster.tracing.ClusterTrace` from snapshots.
        """
        end = self.now if until is None else until
        window = end - since
        if window <= 0:
            return 1.0
        return min(1.0, self.busy_time / window)

    def reset(self) -> None:
        """Reset clock and accounting (used between experiment repetitions)."""
        self.clock.reset()
        self.busy_time = 0.0
        self.lb_time = 0.0


class PEStateArrays:
    """Flat per-PE state of a homogeneous virtual cluster.

    One contiguous vector per quantity (clock, busy time, LB time), indexed
    by rank.  The cluster's bulk operations (compute phases, collective
    synchronisation, LB charging) are a handful of array operations on this
    state instead of Python loops over PE objects.

    With ``replicas=R`` the arrays gain a leading replica axis and become
    ``(R, P)``-shaped: row ``r`` is the full PE state of replica ``r``, and
    the replica-batched execution engine (:mod:`repro.batch`) updates all
    rows with single array operations.  :meth:`replica_view` hands out a
    plain ``(P,)``-shaped :class:`PEStateArrays` whose vectors are NumPy
    *views* of one row, so per-replica code (LB charging, PE views, traces)
    runs unchanged -- and bit-identically -- against the shared batch state.
    """

    __slots__ = ("clock", "busy_time", "lb_time", "speed", "replicas")

    def __init__(
        self, num_pes: int, speed: float, *, replicas: Optional[int] = None
    ) -> None:
        check_positive_int(num_pes, "num_pes")
        check_positive(speed, "speed")
        if replicas is not None:
            check_positive_int(replicas, "replicas")
            shape: "tuple[int, ...]" = (replicas, num_pes)
        else:
            shape = (num_pes,)
        self.clock = np.zeros(shape, dtype=float)
        self.busy_time = np.zeros(shape, dtype=float)
        self.lb_time = np.zeros(shape, dtype=float)
        #: Common speed of the (homogeneous) PEs in FLOP/s.
        self.speed = float(speed)
        #: Number of replica rows, or ``None`` for the plain ``(P,)`` form.
        self.replicas = replicas

    @property
    def size(self) -> int:
        """Number of PEs (per replica, when batched)."""
        return self.clock.shape[-1]

    def replica_view(self, replica: int) -> "PEStateArrays":
        """A ``(P,)``-shaped state sharing the memory of one replica row.

        Mutations through the view (LB charging, per-PE spends) are visible
        in the batch arrays and vice versa.  Only valid on batched state.
        """
        if self.replicas is None:
            raise ValueError("replica_view requires batched state (replicas=R)")
        if not 0 <= replica < self.replicas:
            raise ValueError(f"replica {replica} outside [0, {self.replicas})")
        view = PEStateArrays.__new__(PEStateArrays)
        view.clock = self.clock[replica]
        view.busy_time = self.busy_time[replica]
        view.lb_time = self.lb_time[replica]
        view.speed = self.speed
        view.replicas = None
        return view

    def now(self) -> float:
        """Common virtual time: the clock of the latest PE."""
        return float(self.clock.max())

    def now_per_replica(self) -> np.ndarray:
        """Per-replica common virtual time (batched state only)."""
        return self.clock.max(axis=-1)

    def synchronize(self, extra_cost: float = 0.0) -> float:
        """Align every clock to the common maximum plus ``extra_cost``.

        On batched state every replica row aligns to its *own* maximum (plus
        the shared ``extra_cost``) and the return value is the latest of the
        per-replica targets.
        """
        if extra_cost < 0:
            raise ValueError(f"extra_cost must be >= 0, got {extra_cost}")
        if self.replicas is not None:
            targets = self.clock.max(axis=-1) + float(extra_cost)
            self.clock[:] = targets[:, None]
            return float(targets.max())
        target = float(self.clock.max()) + float(extra_cost)
        self.clock[:] = target
        return target

    def reset(self) -> None:
        """Zero all clocks and accounting."""
        self.clock[:] = 0.0
        self.busy_time[:] = 0.0
        self.lb_time[:] = 0.0


class _ClockView:
    """Single-rank adapter exposing the :class:`VirtualClock` interface."""

    __slots__ = ("_state", "_rank")

    def __init__(self, state: PEStateArrays, rank: int) -> None:
        self._state = state
        self._rank = rank

    @property
    def now(self) -> float:
        return float(self._state.clock[self._rank])

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError(f"cannot advance a clock by {seconds} s (negative)")
        self._state.clock[self._rank] += float(seconds)
        return self.now

    def advance_to(self, timestamp: float) -> float:
        if timestamp > self._state.clock[self._rank]:
            self._state.clock[self._rank] = float(timestamp)
        return self.now

    def reset(self, timestamp: float = 0.0) -> None:
        check_non_negative(timestamp, "timestamp")
        self._state.clock[self._rank] = float(timestamp)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"_ClockView(rank={self._rank}, now={self.now:.6f})"


class ProcessingElementView:
    """Thin per-rank view over :class:`PEStateArrays`.

    Implements the :class:`ProcessingElement` interface (clock, speed,
    busy/LB accounting, ``compute``/``spend``/``utilization``/``reset``) by
    reading and writing one slot of the shared state arrays, so code written
    against individual PEs keeps working against the vectorized cluster.
    """

    __slots__ = ("rank", "_state", "_clock")

    def __init__(self, state: PEStateArrays, rank: int) -> None:
        if not 0 <= rank < state.size:
            raise ValueError(f"rank {rank} outside [0, {state.size})")
        self.rank = rank
        self._state = state
        self._clock = _ClockView(state, rank)

    # ------------------------------------------------------------------
    @property
    def speed(self) -> float:
        """Compute speed in FLOP per second (paper: ``omega``)."""
        return self._state.speed

    @property
    def clock(self) -> _ClockView:
        """The PE's virtual clock (a view into the cluster state)."""
        return self._clock

    @property
    def now(self) -> float:
        """Current virtual time of this PE."""
        return float(self._state.clock[self.rank])

    @property
    def busy_time(self) -> float:
        """Cumulative virtual seconds spent computing."""
        return float(self._state.busy_time[self.rank])

    @busy_time.setter
    def busy_time(self, value: float) -> None:
        check_non_negative(value, "busy_time")
        self._state.busy_time[self.rank] = float(value)

    @property
    def lb_time(self) -> float:
        """Cumulative virtual seconds spent in load-balancing steps."""
        return float(self._state.lb_time[self.rank])

    @lb_time.setter
    def lb_time(self, value: float) -> None:
        check_non_negative(value, "lb_time")
        self._state.lb_time[self.rank] = float(value)

    # ------------------------------------------------------------------
    def compute(self, flops: float) -> float:
        """Execute ``flops`` FLOP of work; returns the elapsed virtual seconds."""
        if flops < 0:
            raise ValueError(f"flops must be >= 0, got {flops}")
        elapsed = flops / self._state.speed
        self._state.clock[self.rank] += elapsed
        self._state.busy_time[self.rank] += elapsed
        return elapsed

    def spend(self, seconds: float, *, busy: bool = False, lb: bool = False) -> float:
        """Advance the clock by ``seconds`` of non-compute activity."""
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        self._state.clock[self.rank] += float(seconds)
        if busy:
            self._state.busy_time[self.rank] += float(seconds)
        if lb:
            self._state.lb_time[self.rank] += float(seconds)
        return seconds

    def utilization(self, *, since: float = 0.0, until: Optional[float] = None) -> float:
        """Busy fraction of the window ``[since, until]`` (``until`` = now)."""
        end = self.now if until is None else until
        window = end - since
        if window <= 0:
            return 1.0
        return min(1.0, self.busy_time / window)

    def reset(self) -> None:
        """Reset this PE's clock and accounting slots."""
        self._state.clock[self.rank] = 0.0
        self._state.busy_time[self.rank] = 0.0
        self._state.lb_time[self.rank] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ProcessingElementView(rank={self.rank}, now={self.now:.6f}, "
            f"busy={self.busy_time:.6f})"
        )
