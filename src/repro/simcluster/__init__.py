"""Virtual distributed-memory cluster substrate.

The paper evaluates ULBA on Baobab (the University of Geneva cluster) with an
MPI implementation of the erosion application.  This reproduction replaces
the physical machine with a *virtual cluster*: a collection of simulated
processing elements (PEs), each with its own virtual clock, connected by an
MPI-like communicator whose collectives synchronise clocks and charge a
latency/bandwidth cost.  Per-PE compute work is charged as
``FLOP / pe_speed`` seconds of virtual time, so the iteration time of the
simulated SPMD application is -- exactly as on a real machine -- dominated
by its most loaded PE.  This preserves the quantity the paper studies
(relative performance of LB policies) while remaining deterministic and
laptop-sized.

Modules
-------
* :mod:`repro.simcluster.clock` -- per-PE virtual clocks.
* :mod:`repro.simcluster.pe` -- processing elements (speed, busy time).
* :mod:`repro.simcluster.comm` -- communication cost model and the
  :class:`SimCommunicator` collectives (bcast/gather/allgather/scatter/
  allreduce/alltoall/barrier and point-to-point).
* :mod:`repro.simcluster.cluster` -- the :class:`VirtualCluster` facade.
* :mod:`repro.simcluster.gossip` -- the per-iteration dissemination
  (gossip) of per-PE metrics used to replicate the WIR database of
  Section III-C.
* :mod:`repro.simcluster.tracing` -- utilization/event traces used to
  reproduce Figure 4b.
"""

from repro.simcluster.clock import VirtualClock
from repro.simcluster.comm import CommCostModel, SimCommunicator
from repro.simcluster.pe import PEStateArrays, ProcessingElement, ProcessingElementView
from repro.simcluster.cluster import VirtualCluster
from repro.simcluster.gossip import (
    GossipBoard,
    GossipConfig,
    SparseGossipBoard,
    make_gossip_board,
    select_push_targets,
)
from repro.simcluster.tracing import (
    ClusterTrace,
    IterationRecord,
    LBEventRecord,
)

__all__ = [
    "ClusterTrace",
    "CommCostModel",
    "GossipBoard",
    "GossipConfig",
    "IterationRecord",
    "LBEventRecord",
    "PEStateArrays",
    "ProcessingElement",
    "ProcessingElementView",
    "SimCommunicator",
    "SparseGossipBoard",
    "VirtualClock",
    "VirtualCluster",
    "make_gossip_board",
    "select_push_targets",
]
