"""The :class:`VirtualCluster` facade.

A :class:`VirtualCluster` bundles the PEs, their communicator and the trace
recorder, and offers the small amount of orchestration the SPMD-style
applications of this repository need:

* ``compute_step(loads)`` -- charge one bulk-synchronous compute phase where
  PE ``p`` executes ``loads[p]`` FLOP and everyone then synchronises (the
  iteration time is the maximum PE time, as in the paper's model);
* ``charge_lb_step(...)`` -- charge the cost of a load-balancing step to all
  PEs (partitioning at the root, broadcast, migration);
* snapshots of per-PE busy time used by the utilization trace of Figure 4b.

The per-PE state lives in flat NumPy vectors
(:class:`~repro.simcluster.pe.PEStateArrays`), so a compute step is a
handful of array operations -- one division, two in-place adds and a max --
instead of a Python loop over PE objects.  ``cluster.pes`` exposes thin
:class:`~repro.simcluster.pe.ProcessingElementView` objects over that state
for API compatibility with code addressing individual PEs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.simcluster.comm import CommCostModel, SimCommunicator
from repro.simcluster.pe import PEStateArrays, ProcessingElementView
from repro.simcluster.tracing import ClusterTrace
from repro.utils.validation import check_non_negative, check_positive, check_positive_int

__all__ = ["StepResult", "VirtualCluster"]


@dataclass(frozen=True)
class StepResult:
    """Timing of one bulk-synchronous compute step."""

    #: Virtual duration of the step (time of the slowest PE + sync cost).
    elapsed: float
    #: Per-PE compute durations for the step.
    pe_times: tuple
    #: Timestamp at which the step completed (all PEs synchronised).
    completed_at: float

    @property
    def average_utilization(self) -> float:
        """Mean ratio of per-PE compute time to the step duration."""
        if self.elapsed <= 0.0:
            return 1.0
        return float(np.mean(np.asarray(self.pe_times) / self.elapsed))


class VirtualCluster:
    """A fixed-size group of simulated PEs with a communicator and a trace."""

    def __init__(
        self,
        num_pes: int,
        *,
        pe_speed: float = 1.0e9,
        cost_model: Optional[CommCostModel] = None,
        state: Optional[PEStateArrays] = None,
    ) -> None:
        check_positive_int(num_pes, "num_pes")
        check_positive(pe_speed, "pe_speed")
        if state is not None:
            # Externally owned state (e.g. a replica row view of a batched
            # (R, P) PEStateArrays): the cluster charges its costs into the
            # shared arrays while keeping its own trace and comm counters.
            if state.replicas is not None or state.size != num_pes:
                raise ValueError(
                    "state must be an unbatched PEStateArrays with "
                    f"{num_pes} PEs"
                )
            self.state = state
        else:
            self.state = PEStateArrays(num_pes, pe_speed)
        self.pes: List[ProcessingElementView] = [
            ProcessingElementView(self.state, r) for r in range(num_pes)
        ]
        self.comm = SimCommunicator(self.pes, cost_model)
        self.trace = ClusterTrace(num_pes=num_pes)

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of PEs."""
        return self.state.size

    @property
    def pe_speed(self) -> float:
        """Speed of the (homogeneous) PEs in FLOP/s."""
        return self.state.speed

    @property
    def now(self) -> float:
        """Common virtual time (all clocks agree outside of a compute phase)."""
        return self.state.now()

    def busy_times(self) -> np.ndarray:
        """Cumulative per-PE busy time, in rank order."""
        return self.state.busy_time.copy()

    # ------------------------------------------------------------------
    def compute_step(
        self,
        loads_flop: Sequence[float],
        *,
        iteration: Optional[int] = None,
        sync_bytes: float = 8.0,
    ) -> StepResult:
        """Run one bulk-synchronous compute phase.

        Parameters
        ----------
        loads_flop:
            FLOP to execute on each PE (length ``P``); an ``ndarray`` is
            used as-is, without copying.
        iteration:
            Iteration index recorded in the trace; omit to skip tracing.
        sync_bytes:
            Payload of the closing synchronisation collective (the erosion
            application exchanges halo columns and per-stripe workloads at
            the end of every iteration).
        """
        loads = np.asarray(loads_flop, dtype=float)
        if loads.shape != (self.size,):
            raise ValueError(
                f"loads_flop must have length {self.size}, got {loads.shape}"
            )
        if (loads < 0).any():
            raise ValueError("loads_flop must all be >= 0")

        state = self.state
        start = state.now()
        pe_times = loads / state.speed
        state.clock += pe_times
        state.busy_time += pe_times
        # Closing collective: every iteration of the paper's application ends
        # with an exchange of boundary data / workload metrics.
        cost = self.comm.cost_model.collective(self.size, sync_bytes)
        end = state.synchronize(cost)
        self.comm.num_collectives += 1
        self.comm.comm_time += cost
        elapsed = end - start

        times_list = pe_times.tolist()
        result = StepResult(
            elapsed=elapsed, pe_times=tuple(times_list), completed_at=end
        )
        if iteration is not None:
            self.trace.record_iteration(
                iteration=iteration,
                elapsed=elapsed,
                pe_compute_times=times_list,
                timestamp=end,
            )
        return result

    # ------------------------------------------------------------------
    def charge_lb_step(
        self,
        *,
        iteration: int,
        partition_seconds: float = 0.0,
        migration_bytes_per_pe: "Sequence[float] | float" = 0.0,
        root: int = 0,
    ) -> float:
        """Charge the virtual cost of one load-balancing step.

        The centralized LB technique of Algorithm 2 consists of: gathering
        the per-PE ``alpha`` values at the root, computing the partition on
        the root (``partition_seconds``), broadcasting it, and migrating the
        data.  Migration is modelled as a personalised exchange whose per-PE
        volume is ``migration_bytes_per_pe`` (scalar or one entry per PE;
        an ``ndarray`` is used without copying).

        Returns the total virtual duration of the LB step (which is also the
        amount added to every PE's ``lb_time``).
        """
        check_non_negative(partition_seconds, "partition_seconds")
        if not 0 <= root < self.size:
            raise ValueError(f"root rank {root} outside [0, {self.size})")
        if np.isscalar(migration_bytes_per_pe):
            max_volume = float(migration_bytes_per_pe)
            if max_volume < 0:
                raise ValueError("migration volumes must all be >= 0")
        else:
            volumes = np.asarray(migration_bytes_per_pe, dtype=float)
            if volumes.shape != (self.size,):
                raise ValueError(
                    "migration_bytes_per_pe must be a scalar or have one "
                    f"entry per PE ({self.size})"
                )
            if (volumes < 0).any():
                raise ValueError("migration volumes must all be >= 0")
            max_volume = float(volumes.max()) if volumes.size else 0.0

        state = self.state
        model = self.comm.cost_model
        start = state.now()
        # Gather alphas / workloads at the root.
        gather_cost = model.collective(self.size, 8.0)
        state.synchronize(gather_cost)
        # Root computes the partition.
        state.clock[root] += partition_seconds
        # Broadcast the partition.
        bcast_cost = model.collective(self.size, 8.0 * self.size)
        state.synchronize(bcast_cost)
        # Migrate data (personalised exchange, bounded by the largest volume).
        migrate_cost = model.collective(self.size, max_volume)
        end = state.synchronize(migrate_cost)
        self.comm.num_collectives += 3
        self.comm.comm_time += gather_cost + bcast_cost + migrate_cost

        elapsed = end - start
        state.lb_time += elapsed
        self.trace.record_lb_event(iteration=iteration, cost=elapsed, timestamp=end)
        return elapsed

    # ------------------------------------------------------------------
    def synchronize(self) -> float:
        """Barrier: align every PE clock; returns the common timestamp."""
        return self.state.synchronize()

    def reset(self) -> None:
        """Reset clocks, accounting and traces (between repetitions)."""
        self.state.reset()
        self.trace = ClusterTrace(num_pes=self.size)
        self.comm.num_collectives = 0
        self.comm.num_messages = 0
        self.comm.comm_time = 0.0
