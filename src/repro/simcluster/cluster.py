"""The :class:`VirtualCluster` facade.

A :class:`VirtualCluster` bundles the PEs, their communicator and the trace
recorder, and offers the small amount of orchestration the SPMD-style
applications of this repository need:

* ``compute_step(loads)`` -- charge one bulk-synchronous compute phase where
  PE ``p`` executes ``loads[p]`` FLOP and everyone then synchronises (the
  iteration time is the maximum PE time, as in the paper's model);
* ``charge_lb_step(...)`` -- charge the cost of a load-balancing step to all
  PEs (partitioning at the root, broadcast, migration);
* snapshots of per-PE busy time used by the utilization trace of Figure 4b.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.simcluster.clock import synchronize
from repro.simcluster.comm import CommCostModel, SimCommunicator
from repro.simcluster.pe import ProcessingElement
from repro.simcluster.tracing import ClusterTrace
from repro.utils.validation import check_non_negative, check_positive, check_positive_int

__all__ = ["StepResult", "VirtualCluster"]


@dataclass(frozen=True)
class StepResult:
    """Timing of one bulk-synchronous compute step."""

    #: Virtual duration of the step (time of the slowest PE + sync cost).
    elapsed: float
    #: Per-PE compute durations for the step.
    pe_times: tuple
    #: Timestamp at which the step completed (all PEs synchronised).
    completed_at: float

    @property
    def average_utilization(self) -> float:
        """Mean ratio of per-PE compute time to the step duration."""
        if self.elapsed <= 0.0:
            return 1.0
        return float(np.mean(np.asarray(self.pe_times) / self.elapsed))


class VirtualCluster:
    """A fixed-size group of simulated PEs with a communicator and a trace."""

    def __init__(
        self,
        num_pes: int,
        *,
        pe_speed: float = 1.0e9,
        cost_model: Optional[CommCostModel] = None,
    ) -> None:
        check_positive_int(num_pes, "num_pes")
        check_positive(pe_speed, "pe_speed")
        self.pes: List[ProcessingElement] = [
            ProcessingElement(rank=r, speed=pe_speed) for r in range(num_pes)
        ]
        self.comm = SimCommunicator(self.pes, cost_model)
        self.trace = ClusterTrace(num_pes=num_pes)

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of PEs."""
        return len(self.pes)

    @property
    def pe_speed(self) -> float:
        """Speed of the (homogeneous) PEs in FLOP/s."""
        return self.pes[0].speed

    @property
    def now(self) -> float:
        """Common virtual time (all clocks agree outside of a compute phase)."""
        return max(pe.now for pe in self.pes)

    def busy_times(self) -> np.ndarray:
        """Cumulative per-PE busy time, in rank order."""
        return np.asarray([pe.busy_time for pe in self.pes], dtype=float)

    # ------------------------------------------------------------------
    def compute_step(
        self,
        loads_flop: Sequence[float],
        *,
        iteration: Optional[int] = None,
        sync_bytes: float = 8.0,
    ) -> StepResult:
        """Run one bulk-synchronous compute phase.

        Parameters
        ----------
        loads_flop:
            FLOP to execute on each PE (length ``P``).
        iteration:
            Iteration index recorded in the trace; omit to skip tracing.
        sync_bytes:
            Payload of the closing synchronisation collective (the erosion
            application exchanges halo columns and per-stripe workloads at
            the end of every iteration).
        """
        loads = np.asarray(list(loads_flop), dtype=float)
        if loads.shape != (self.size,):
            raise ValueError(
                f"loads_flop must have length {self.size}, got {loads.shape}"
            )
        if (loads < 0).any():
            raise ValueError("loads_flop must all be >= 0")

        start = self.now
        pe_times = []
        for pe, flops in zip(self.pes, loads):
            pe_times.append(pe.compute(float(flops)))
        # Closing collective: every iteration of the paper's application ends
        # with an exchange of boundary data / workload metrics.
        self.comm._collective_sync(sync_bytes)
        end = self.now
        elapsed = end - start

        result = StepResult(
            elapsed=elapsed, pe_times=tuple(pe_times), completed_at=end
        )
        if iteration is not None:
            self.trace.record_iteration(
                iteration=iteration,
                elapsed=elapsed,
                pe_compute_times=pe_times,
                timestamp=end,
            )
        return result

    # ------------------------------------------------------------------
    def charge_lb_step(
        self,
        *,
        iteration: int,
        partition_seconds: float = 0.0,
        migration_bytes_per_pe: Sequence[float] | float = 0.0,
        root: int = 0,
    ) -> float:
        """Charge the virtual cost of one load-balancing step.

        The centralized LB technique of Algorithm 2 consists of: gathering
        the per-PE ``alpha`` values at the root, computing the partition on
        the root (``partition_seconds``), broadcasting it, and migrating the
        data.  Migration is modelled as a personalised exchange whose per-PE
        volume is ``migration_bytes_per_pe``.

        Returns the total virtual duration of the LB step (which is also the
        amount added to every PE's ``lb_time``).
        """
        check_non_negative(partition_seconds, "partition_seconds")
        start = self.now
        # Gather alphas / workloads at the root.
        self.comm.gather([0.0] * self.size, root=root)
        # Root computes the partition.
        self.pes[root].spend(partition_seconds)
        # Broadcast the partition.
        self.comm.bcast(None, root=root, nbytes=8.0 * self.size)
        # Migrate data.
        if np.isscalar(migration_bytes_per_pe):
            volumes = np.full(self.size, float(migration_bytes_per_pe))
        else:
            volumes = np.asarray(list(migration_bytes_per_pe), dtype=float)
            if volumes.shape != (self.size,):
                raise ValueError(
                    "migration_bytes_per_pe must be a scalar or have one "
                    f"entry per PE ({self.size})"
                )
        if (volumes < 0).any():
            raise ValueError("migration volumes must all be >= 0")
        max_volume = float(volumes.max()) if volumes.size else 0.0
        self.comm._collective_sync(max_volume)
        end = self.now
        elapsed = end - start
        for pe in self.pes:
            pe.lb_time += elapsed
        self.trace.record_lb_event(iteration=iteration, cost=elapsed, timestamp=end)
        return elapsed

    # ------------------------------------------------------------------
    def synchronize(self) -> float:
        """Barrier: align every PE clock; returns the common timestamp."""
        return synchronize(pe.clock for pe in self.pes)

    def reset(self) -> None:
        """Reset clocks, accounting and traces (between repetitions)."""
        for pe in self.pes:
            pe.reset()
        self.trace = ClusterTrace(num_pes=self.size)
        self.comm.num_collectives = 0
        self.comm.num_messages = 0
        self.comm.comm_time = 0.0
