"""MPI-like communicator for the virtual cluster.

The communicator offers the subset of MPI used by the paper's application and
by Algorithm 2 (broadcast of the partition, gather of the ``alpha`` values,
allgather of workload metrics, point-to-point migration of cells).  It
operates in the simulator's *global view*: a collective takes the vector of
per-rank send values and returns the vector of per-rank receive values, while
charging virtual time to every participating PE:

* every collective is an implicit barrier -- all clocks synchronise to the
  latest participant;
* on top of the barrier, a latency/bandwidth cost is charged according to a
  simple log-tree model (``ceil(log2 P) * (latency + bytes / bandwidth)``),
  the standard first-order model of MPI collective implementations.

Keeping the cost model explicit (rather than hiding it in the LB cost
constant ``C``) lets the erosion experiments charge realistic, size-dependent
costs for partition broadcasts and cell migration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, TypeVar

from repro.simcluster.clock import synchronize
from repro.simcluster.pe import ProcessingElement
from repro.utils.validation import check_non_negative

__all__ = ["CommCostModel", "SimCommunicator"]

T = TypeVar("T")


@dataclass(frozen=True)
class CommCostModel:
    """First-order latency/bandwidth model of the interconnect.

    Parameters
    ----------
    latency:
        Per-message latency in seconds (MPI ``alpha`` term).
    bandwidth:
        Link bandwidth in bytes per second (MPI ``1/beta`` term).
    """

    latency: float = 1.0e-6
    bandwidth: float = 1.0e10

    def __post_init__(self) -> None:
        check_non_negative(self.latency, "latency")
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {self.bandwidth}")

    # ------------------------------------------------------------------
    def point_to_point(self, nbytes: float) -> float:
        """Cost of one point-to-point message of ``nbytes`` bytes."""
        check_non_negative(nbytes, "nbytes")
        return self.latency + nbytes / self.bandwidth

    def collective(self, num_pes: int, nbytes: float) -> float:
        """Cost of a tree-based collective over ``num_pes`` PEs.

        ``ceil(log2 P)`` rounds, each paying one point-to-point message of
        ``nbytes`` bytes.
        """
        if num_pes <= 0:
            raise ValueError(f"num_pes must be > 0, got {num_pes}")
        rounds = max(1, math.ceil(math.log2(num_pes))) if num_pes > 1 else 0
        return rounds * self.point_to_point(nbytes)

    @classmethod
    def free(cls) -> "CommCostModel":
        """A zero-cost interconnect (collectives only synchronise clocks)."""
        return cls(latency=0.0, bandwidth=math.inf)


class SimCommunicator:
    """Simulated MPI communicator bound to a fixed group of PEs."""

    def __init__(
        self,
        pes: Sequence[ProcessingElement],
        cost_model: Optional[CommCostModel] = None,
    ) -> None:
        if not pes:
            raise ValueError("a communicator needs at least one PE")
        ranks = [pe.rank for pe in pes]
        if ranks != list(range(len(pes))):
            raise ValueError(
                "PEs must be provided in rank order 0..P-1, got ranks "
                f"{ranks}"
            )
        self._pes: List[ProcessingElement] = list(pes)
        self.cost_model = cost_model or CommCostModel()
        #: Number of collective operations performed (diagnostics).
        self.num_collectives = 0
        #: Number of point-to-point messages performed (diagnostics).
        self.num_messages = 0
        #: Total virtual seconds charged for communication (per-PE, i.e. the
        #: synchronised overhead, not the sum over PEs).
        self.comm_time = 0.0

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of PEs in the communicator (MPI ``Comm.Get_size``)."""
        return len(self._pes)

    @property
    def pes(self) -> List[ProcessingElement]:
        """The participating PEs, in rank order."""
        return list(self._pes)

    def pe(self, rank: int) -> ProcessingElement:
        """The PE with the given ``rank``."""
        self._check_rank(rank)
        return self._pes[rank]

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} outside [0, {self.size})")

    def _check_vector(self, values: Sequence[Any], name: str) -> None:
        if len(values) != self.size:
            raise ValueError(
                f"{name} must have one entry per rank ({self.size}), got "
                f"{len(values)}"
            )

    # ------------------------------------------------------------------
    def _collective_sync(self, nbytes: float) -> None:
        cost = self.cost_model.collective(self.size, nbytes)
        synchronize((pe.clock for pe in self._pes), extra_cost=cost)
        self.num_collectives += 1
        self.comm_time += cost

    # ------------------------------------------------------------------
    # Collectives (global view).
    # ------------------------------------------------------------------
    def barrier(self) -> float:
        """Synchronise all PEs; returns the post-barrier timestamp."""
        self._collective_sync(0.0)
        return self._pes[0].now

    def bcast(self, value: T, root: int = 0, *, nbytes: float = 8.0) -> List[T]:
        """Broadcast ``value`` from ``root``; every rank receives it."""
        self._check_rank(root)
        self._collective_sync(nbytes)
        return [value for _ in range(self.size)]

    def gather(
        self, values: Sequence[T], root: int = 0, *, nbytes: float = 8.0
    ) -> List[Optional[List[T]]]:
        """Gather per-rank ``values`` at ``root``.

        Returns the per-rank receive vector: the root's entry is the full
        list, every other entry is ``None`` (mirroring ``mpi4py``'s
        lower-case ``gather``).
        """
        self._check_rank(root)
        self._check_vector(values, "values")
        self._collective_sync(nbytes)
        out: List[Optional[List[T]]] = [None] * self.size
        out[root] = list(values)
        return out

    def allgather(self, values: Sequence[T], *, nbytes: float = 8.0) -> List[List[T]]:
        """All ranks receive the full vector of per-rank ``values``."""
        self._check_vector(values, "values")
        self._collective_sync(nbytes * self.size)
        gathered = list(values)
        return [list(gathered) for _ in range(self.size)]

    def scatter(
        self, values: Sequence[T], root: int = 0, *, nbytes: float = 8.0
    ) -> List[T]:
        """Scatter one entry of ``values`` (held at ``root``) to each rank."""
        self._check_rank(root)
        self._check_vector(values, "values")
        self._collective_sync(nbytes)
        return list(values)

    def allreduce(
        self,
        values: Sequence[float],
        op: Callable[[Sequence[float]], float] = sum,
        *,
        nbytes: float = 8.0,
    ) -> List[float]:
        """Reduce per-rank ``values`` with ``op``; every rank gets the result."""
        self._check_vector(values, "values")
        self._collective_sync(nbytes)
        result = op(list(values))
        return [result for _ in range(self.size)]

    def reduce(
        self,
        values: Sequence[float],
        op: Callable[[Sequence[float]], float] = sum,
        root: int = 0,
        *,
        nbytes: float = 8.0,
    ) -> List[Optional[float]]:
        """Reduce per-rank ``values`` with ``op`` at ``root``."""
        self._check_rank(root)
        self._check_vector(values, "values")
        self._collective_sync(nbytes)
        out: List[Optional[float]] = [None] * self.size
        out[root] = op(list(values))
        return out

    def alltoall(
        self, matrix: Sequence[Sequence[T]], *, nbytes: float = 8.0
    ) -> List[List[T]]:
        """Personalised all-to-all: ``matrix[src][dst]`` is delivered to ``dst``.

        Returns ``received`` with ``received[dst][src] = matrix[src][dst]``.
        """
        self._check_vector(matrix, "matrix")
        for row in matrix:
            self._check_vector(row, "matrix row")
        self._collective_sync(nbytes * self.size)
        return [
            [matrix[src][dst] for src in range(self.size)] for dst in range(self.size)
        ]

    # ------------------------------------------------------------------
    # Point-to-point.
    # ------------------------------------------------------------------
    def send_recv(self, source: int, dest: int, nbytes: float = 8.0) -> float:
        """Charge a point-to-point message from ``source`` to ``dest``.

        The receiver cannot complete before the sender has sent, so the
        receiver's clock is advanced to ``max(sender, receiver) + cost`` and
        the sender's by the injection cost only.  Returns the transfer cost.
        """
        self._check_rank(source)
        self._check_rank(dest)
        cost = self.cost_model.point_to_point(nbytes)
        sender = self._pes[source]
        receiver = self._pes[dest]
        sender.clock.advance(cost)
        receiver.clock.advance_to(max(sender.now, receiver.now + cost))
        self.num_messages += 1
        return cost
