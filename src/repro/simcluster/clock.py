"""Virtual clocks for the simulated cluster.

Each processing element owns a :class:`VirtualClock`.  Compute work advances
only that PE's clock; collective communication synchronises all clocks to the
latest participant (plus the communication cost), reproducing the implicit
barrier semantics of the bulk-synchronous SPMD applications the paper
studies.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.utils.validation import check_non_negative

__all__ = ["VirtualClock", "synchronize"]


class VirtualClock:
    """A monotonically increasing virtual clock, in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        check_non_negative(start, "start")
        self._now = float(start)

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` (must be >= 0) and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance a clock by {seconds} s (negative)")
        self._now += float(seconds)
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Advance the clock to ``timestamp`` if it is in the future.

        Clocks never move backwards; synchronising to an earlier timestamp is
        a no-op, which is what an MPI barrier does to the latest rank.
        """
        if timestamp > self._now:
            self._now = float(timestamp)
        return self._now

    def reset(self, timestamp: float = 0.0) -> None:
        """Reset the clock (used between independent experiment runs)."""
        check_non_negative(timestamp, "timestamp")
        self._now = float(timestamp)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"VirtualClock(now={self._now:.6f})"


def synchronize(clocks: Iterable[VirtualClock], *, extra_cost: float = 0.0) -> float:
    """Synchronise ``clocks`` to their common maximum plus ``extra_cost``.

    Returns the post-synchronisation timestamp.  This is the core primitive
    behind every collective of :class:`repro.simcluster.comm.SimCommunicator`.
    """
    clock_list: List[VirtualClock] = list(clocks)
    if not clock_list:
        raise ValueError("cannot synchronise an empty set of clocks")
    if extra_cost < 0:
        raise ValueError(f"extra_cost must be >= 0, got {extra_cost}")
    target = max(c.now for c in clock_list) + float(extra_cost)
    for c in clock_list:
        c.advance_to(target)
    return target
