"""Replica-batched execution engine (``repro.batch``).

Runs ``R`` seeded replicas of one run configuration in a single vectorized
pass: the hot per-iteration state carries a leading replica axis (``(R, P)``
PE state, ``(R, P, P)`` gossip boards, ``(R, P)`` WIR estimators) while
per-replica control flow (LB triggers, partitions) runs the existing solo
components against row views of the shared arrays -- so replica ``r`` of a
batch is bit-identical to a solo run with seed ``seeds[r]``.

Entry points:

* :class:`BatchRunner` -- component-level, mirrors
  :class:`repro.runtime.skeleton.IterativeRunner`;
* :meth:`repro.api.session.Session.run_batch` -- declarative, from a
  :class:`~repro.api.config.RunConfig`;
* ``repro run --replicas N`` -- the CLI surface.
"""

from repro.batch.result import BatchResult
from repro.batch.runner import BatchRunner

__all__ = ["BatchResult", "BatchRunner"]
