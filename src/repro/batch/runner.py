"""The replica-batched execution engine.

Campaigns and figure drivers average every curve over seeded repetitions:
the same configuration runs ``R`` times with different seeds and only the
replica-averaged trajectories reach the plots.  Before this engine each
repetition re-ran the full Python hot loop; :class:`BatchRunner` runs all
``R`` replicas in a *single* vectorized pass instead:

* the per-PE state is one ``(R, P)``
  :class:`~repro.simcluster.pe.PEStateArrays` -- a compute phase is one
  matrix operation for every replica at once;
* the ``R`` gossip boards live in one ``(R, P, P)``
  :class:`~repro.simcluster.gossip.BatchGossipBoard` with a stacked
  per-round peer selection and a single grouped merge;
* the ``R * P`` WIR estimators update in one batched EMA
  (:class:`~repro.lb.wir.WIREstimateArray` with ``replicas=R``).

Control flow that genuinely diverges per replica -- the LB trigger decision,
the centralized LB step, partitions -- stays per-replica, running the
*existing* solo components against NumPy row views of the shared state.
That is what makes the engine exactly equivalent: replica ``r`` of a batch
is bit-identical to a solo :class:`~repro.runtime.skeleton.IterativeRunner`
run with seed ``seeds[r]`` (the equivalence guard in
``tests/batch/test_batch_equivalence.py`` asserts it), while the shared
per-iteration work no longer scales with ``R`` in Python-call terms.

**Memory model.**  The dominant state of a dense-gossip batch is the
``(R, P, P)`` board -- 16 bytes per entry, so 16 replicas at ``P = 1024``
already need 256 MiB of board alone and the batch engine would fall off a
memory cliff long before the CPU saturates.  Two escape hatches compose:

* ``gossip_config=GossipConfig(mode="sparse", ...)`` swaps the quadratic
  board for per-replica memory-bounded sparse boards
  (``O(R * P * view_size)``);
* ``memory_budget_bytes`` caps the resident board state: when the requested
  batch would exceed it, the replicas are **chunked** into sequential
  sub-batches that each fit the budget, transparently -- the returned
  :class:`~repro.batch.result.BatchResult` is indistinguishable from an
  unchunked run, and every replica stays bit-identical (replicas share no
  state, so splitting the batch cannot perturb them).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

import numpy as np

from repro.batch.result import BatchResult
from repro.lb.adaptive import DegradationTrigger, ULBADegradationTrigger
from repro.lb.base import LBContext, TriggerPolicy, WorkloadPolicy
from repro.lb.centralized import CentralizedLoadBalancer, LBStepReport
from repro.lb.standard import StandardPolicy
from repro.lb.wir import BatchWIRDatabase, OverloadDetector, WIREstimateArray
from repro.partitioning.stripe import StripePartition, StripePartitioner
from repro.obs.clock import wall_clock
from repro.runtime.degradation import BatchDegradationTracker
from repro.runtime.skeleton import RunResult, StripedApplication
from repro.simcluster.cluster import VirtualCluster
from repro.simcluster.comm import CommCostModel
from repro.simcluster.gossip import GossipConfig
from repro.simcluster.pe import PEStateArrays
from repro.simcluster.tracing import IterationRecord
from repro.utils.rng import SeedLike
from repro.utils.validation import check_non_negative, check_positive, check_positive_int

if TYPE_CHECKING:  # pragma: no cover - typing-only (obs stays optional)
    from repro.obs.profiler import StageProfiler

__all__ = ["BatchRunner"]


class BatchRunner:
    """Algorithm 1 over ``R`` seeded replicas in one vectorized pass.

    Parameters
    ----------
    num_pes:
        PEs per replica (every replica runs on the same cluster size).
    applications:
        One :class:`~repro.runtime.skeleton.StripedApplication` per replica
        (typically the same scenario built for ``R`` different seeds).  All
        replicas must expose the same number of columns.
    seeds:
        One gossip seed per replica; replica ``r`` consumes it exactly like
        a solo runner constructed with ``seed=seeds[r]``.
    workload_policies / trigger_policies:
        Per-replica policy instances (policies carry state, so replicas must
        not share them); ``None`` creates the solo runner's defaults.
    initial_lb_cost_estimates:
        Per-replica LB-cost prior in seconds (or one scalar for all).
    pe_speed, cost_model, use_gossip, gossip_config, wir_smoothing,
    partition_flop_per_column, bytes_per_load_unit:
        As on :class:`~repro.runtime.skeleton.IterativeRunner`, shared by
        every replica.
    memory_budget_bytes:
        Upper bound on the peak gossip state of one sub-batch (resident
        board plus the per-round merge transients, which are equally
        quadratic in dense mode).  ``None`` (default) never chunks.  When the full ``R``-replica board
        would exceed the budget, :meth:`run` transparently executes the
        replicas as sequential sub-batches of ``chunk_size`` replicas each
        (at least one -- a single replica above budget still runs);
        component attributes (``state``, ``clusters``, ...) are then built
        per chunk and not exposed on this facade.
    profiler:
        Optional :class:`~repro.obs.profiler.StageProfiler` timing the
        named hot-loop stages (``compute_step`` / ``advance`` /
        ``stripe_sum`` / ``wir_update`` / ``gossip_round`` / ``lb_decide``
        / ``lb_apply`` -- the same names the solo runner uses, so solo and
        batch snapshots merge).  Chunked runs share one profiler across
        every sub-batch.  ``None`` (default) disables all probes.
    on_chunk:
        Optional callback ``(chunk, num_chunks, replicas, wall_time)``
        invoked after each completed sub-batch (once with ``(0, 1, R,
        wall)`` for an unchunked run); the session turns these into
        ``"batch_chunk"`` events.

    Example
    -------
    >>> from repro.batch import BatchRunner
    >>> from repro.runtime.synthetic import SyntheticGrowthApplication
    >>> apps = [SyntheticGrowthApplication(64) for _ in range(4)]
    >>> runner = BatchRunner(8, apps, seeds=[0, 1, 2, 3])
    >>> result = runner.run(20)
    >>> result.num_replicas
    4
    """

    def __init__(
        self,
        num_pes: int,
        applications: Sequence[StripedApplication],
        *,
        seeds: Sequence[SeedLike],
        pe_speed: float = 1.0e9,
        cost_model: Optional[CommCostModel] = None,
        workload_policies: Optional[Sequence[WorkloadPolicy]] = None,
        trigger_policies: Optional[Sequence[TriggerPolicy]] = None,
        use_gossip: bool = True,
        gossip_config: Optional[GossipConfig] = None,
        wir_smoothing: float = 0.5,
        initial_lb_cost_estimates: "Sequence[float] | float" = 0.0,
        partition_flop_per_column: float = 50.0,
        bytes_per_load_unit: float = 800.0,
        memory_budget_bytes: Optional[float] = None,
        profiler: "Optional[StageProfiler]" = None,
        on_chunk: Optional[Callable[[int, int, int, float], None]] = None,
    ) -> None:
        check_positive_int(num_pes, "num_pes")
        check_positive(pe_speed, "pe_speed")
        replicas = len(applications)
        if replicas == 0:
            raise ValueError("applications must name at least one replica")
        if len(seeds) != replicas:
            raise ValueError(
                f"need one seed per replica: {replicas} applications, "
                f"{len(seeds)} seeds"
            )
        num_columns = applications[0].num_columns
        for app in applications:
            if app.num_columns != num_columns:
                raise ValueError(
                    "all replica applications must have the same number of "
                    f"columns; got {app.num_columns} and {num_columns}"
                )
        if num_columns < num_pes:
            raise ValueError(
                f"the applications have {num_columns} columns, fewer than "
                f"the {num_pes} PEs"
            )
        if np.isscalar(initial_lb_cost_estimates):
            priors = [float(initial_lb_cost_estimates)] * replicas
        else:
            priors = [float(p) for p in initial_lb_cost_estimates]
            if len(priors) != replicas:
                raise ValueError(
                    f"need one LB-cost prior per replica, got {len(priors)}"
                )
        for prior in priors:
            check_non_negative(prior, "initial_lb_cost_estimate")
        if workload_policies is None:
            workload_policies = [StandardPolicy() for _ in range(replicas)]
        if trigger_policies is None:
            trigger_policies = [DegradationTrigger() for _ in range(replicas)]
        if len(workload_policies) != replicas or len(trigger_policies) != replicas:
            raise ValueError("need one workload and one trigger policy per replica")
        if len(set(map(id, workload_policies))) != replicas or len(
            set(map(id, trigger_policies))
        ) != replicas:
            raise ValueError(
                "policies carry per-run state; every replica needs its own instance"
            )

        self.num_pes = num_pes
        self.num_replicas = replicas
        self.seeds = tuple(seeds)
        self.applications = list(applications)
        self.workload_policies = list(workload_policies)
        self.trigger_policies = list(trigger_policies)
        self.initial_lb_cost_estimates = priors
        self._pe_speed = pe_speed
        self._cost_model = cost_model
        self._use_gossip = use_gossip
        self._gossip_config = gossip_config
        self._wir_smoothing = wir_smoothing
        self._partition_flop_per_column = partition_flop_per_column
        self._bytes_per_load_unit = bytes_per_load_unit
        self._num_columns = num_columns
        self._profiler = profiler
        self._on_chunk = on_chunk

        if memory_budget_bytes is not None:
            check_positive(memory_budget_bytes, "memory_budget_bytes")
        self.memory_budget_bytes = memory_budget_bytes
        per_replica = self._per_replica_board_bytes(
            num_pes, use_gossip, gossip_config
        )
        if memory_budget_bytes is None:
            chunk = replicas
        else:
            chunk = min(replicas, max(1, int(memory_budget_bytes // per_replica)))
        #: Replicas executed per resident sub-batch (== ``num_replicas``
        #: when the whole batch fits the budget).
        self.chunk_size = chunk
        #: Number of sequential sub-batches :meth:`run` will execute.
        self.num_chunks = -(-replicas // chunk)
        if self.num_chunks > 1:
            # Deferred construction: each chunk builds (and frees) its own
            # engine inside run(), so the resident board state never
            # exceeds the budget.
            return
        self._build_engine()

    # ------------------------------------------------------------------
    @staticmethod
    def _per_replica_board_bytes(
        num_pes: int, use_gossip: bool, gossip_config: Optional[GossipConfig]
    ) -> int:
        """Peak gossip-state bytes one replica adds to the batch.

        Dense gossip costs ``P * P * 32`` bytes per replica: the resident
        ``(R, P, P)`` value/version board (16 bytes per entry) **plus** the
        equally quadratic per-round transients of
        :meth:`~repro.simcluster.gossip.BatchGossipBoard.step` -- the
        stacked ``(R, P, P)`` float64 key draw and the ``(R, P, P)`` int64
        shift-packed versions allocate another 16 bytes per entry at the
        peak of every dissemination round, so budgeting the board alone
        would overshoot the requested ceiling by ~2x.  Sparse gossip is the
        resident ``P * view_size * 24`` (its merge transients are one
        replica's worth regardless of ``R``: sparse boards step
        sequentially); instant dissemination keeps only ``(R, P)`` rows.
        Buffers proportional to ``R * columns`` are excluded -- the budget
        targets the quadratic cliff.
        """
        if not use_gossip:
            return num_pes * 9
        cfg = gossip_config or GossipConfig()
        if cfg.mode == "sparse":
            return cfg.board_nbytes(num_pes)
        return 2 * cfg.board_nbytes(num_pes)

    def _build_engine(self) -> None:
        """Materialize the vectorized ``(R, P)`` engine state (one chunk)."""
        num_pes = self.num_pes
        replicas = self.num_replicas
        pe_speed = self._pe_speed
        cost_model = self._cost_model
        num_columns = self._num_columns

        #: Shared ``(R, P)`` PE state of every replica.
        self.state = PEStateArrays(num_pes, pe_speed, replicas=replicas)
        #: Per-replica cluster facades over the shared state rows (each with
        #: its own trace and comm counters; LB steps charge through these).
        self.clusters: List[VirtualCluster] = [
            VirtualCluster(
                num_pes,
                pe_speed=pe_speed,
                cost_model=cost_model,
                state=self.state.replica_view(r),
            )
            for r in range(replicas)
        ]
        self.wir_db = BatchWIRDatabase(
            num_pes,
            self.seeds,
            use_gossip=self._use_gossip,
            gossip_config=self._gossip_config,
        )
        self.wir_estimates = WIREstimateArray(
            num_pes, smoothing=self._wir_smoothing, replicas=replicas
        )
        #: Vectorized degradation accumulation (elementwise bit-identical to
        #: R scalar trackers; see BatchDegradationTracker).
        self.degradation = BatchDegradationTracker(replicas)
        # The degradation-trigger family admits a vectorized decision path:
        # `degradation >= margin * avg_cost` is a necessary condition for
        # firing (the ULBA overhead only raises the threshold), so one
        # vectorized compare gates the per-replica Python work; any custom
        # trigger type falls back to per-replica should_balance calls with
        # full contexts.
        self._trigger_fast_mode = self._detect_trigger_fast_mode(self.trigger_policies)
        if self._trigger_fast_mode is not None:
            self._trigger_margins = np.asarray(
                [t.cost_margin for t in self.trigger_policies], dtype=float
            )
            #: Per-replica average-LB-cost cache; only changes at LB steps.
            self._avg_cost_buf = np.asarray(
                self.initial_lb_cost_estimates, dtype=float
            )
        self._last_lb_arr = np.zeros(replicas, dtype=np.int64)
        self.load_balancers: List[CentralizedLoadBalancer] = [
            CentralizedLoadBalancer(
                self.clusters[r],
                self.workload_policies[r],
                partition_flop_per_column=self._partition_flop_per_column,
                bytes_per_load_unit=self._bytes_per_load_unit,
            )
            for r in range(replicas)
        ]
        self.partitioner = StripePartitioner(num_pes)
        #: Current stripe partition of each replica (uniform until LB calls
        #: make them diverge).
        self.partitions: List[StripePartition] = [
            self.partitioner.uniform_partition(num_columns) for _ in range(replicas)
        ]
        self._stripe_starts: List[Optional[np.ndarray]] = [
            self._starts_of(p) for p in self.partitions
        ]
        #: Per-replica column loads, copied once per iteration so the
        #: per-stripe sums of every replica are one concatenated reduceat.
        self._cols_buf = np.empty((replicas, num_columns), dtype=float)
        self._concat_starts: Optional[np.ndarray] = None
        self._refresh_concat_starts()
        self._last_lb_iteration = [0] * replicas
        self._total_iterations: Optional[int] = None

    # ------------------------------------------------------------------
    @staticmethod
    def _detect_trigger_fast_mode(
        triggers: Sequence[TriggerPolicy],
    ) -> Optional[str]:
        """Classify the trigger set for the vectorized decision path.

        ``"standard"``: every trigger is exactly a
        :class:`~repro.lb.adaptive.DegradationTrigger` (threshold = margin x
        average LB cost, no WIR reads).  ``"ulba"``: every trigger is
        exactly a :class:`~repro.lb.adaptive.ULBADegradationTrigger` with
        plain identically-parameterized :class:`OverloadDetector` instances,
        so the per-replica overload counts batch into one stacked z-score
        pass.  Anything else returns ``None`` and the runner calls
        ``should_balance`` per replica with a full context -- same results,
        just slower.
        """
        if all(type(t) is ULBADegradationTrigger for t in triggers):
            detectors = [t.detector for t in triggers]
            first = detectors[0]
            if all(
                type(d) is OverloadDetector
                and d.threshold == first.threshold
                and d.min_population == first.min_population
                for d in detectors
            ):
                return "ulba"
            return None
        if all(type(t) is DegradationTrigger for t in triggers):
            return "standard"
        return None

    @staticmethod
    def _starts_of(partition: StripePartition) -> Optional[np.ndarray]:
        """reduceat start offsets of a partition, or None when degenerate.

        Mirrors the solo runner's ``_stripe_loads`` fast/slow path split:
        ``None`` flags a partition with empty stripes, which ``reduceat``
        mishandles and the prefix-sum fallback serves instead.
        """
        bounds = np.asarray(partition.partition.boundaries)
        starts = bounds[:-1]
        if (bounds[1:] > starts).all():
            return starts
        return None

    def _stripe_loads(self, replica: int, column_loads: np.ndarray) -> np.ndarray:
        """Per-stripe workload sums of one replica (solo-identical)."""
        starts = self._stripe_starts[replica]
        if starts is not None:
            return np.add.reduceat(column_loads, starts)
        # repro: noqa[HOT003] -- degenerate-partition fallback: reached only when a stripe is empty, never on the steady-state path
        bounds = np.asarray(self.partitions[replica].partition.boundaries)
        # repro: noqa[HOT003] -- same fallback path; the reduceat fast path above serves every non-degenerate iteration
        prefix = np.concatenate(([0.0], np.cumsum(column_loads)))
        return prefix[bounds[1:]] - prefix[bounds[:-1]]

    def _refresh_concat_starts(self) -> None:
        """Rebuild the concatenated reduceat offsets of all replicas.

        One ``np.add.reduceat`` over the flattened ``(R * C,)`` column
        buffer computes every replica's stripe sums at once; segment sums
        are independent, so the result is bit-identical to ``R`` separate
        reduceats.  Degenerate partitions (empty stripes) disable the
        concatenation and fall back to the per-replica path.
        """
        if all(starts is not None for starts in self._stripe_starts):
            columns = self._num_columns
            self._concat_starts = np.concatenate(
                [
                    self._stripe_starts[r] + r * columns
                    for r in range(self.num_replicas)
                ]
            )
        else:
            self._concat_starts = None

    def _stripe_loads_all(self) -> np.ndarray:
        """``(R, P)`` stripe sums of every replica from the column buffer."""
        if self._concat_starts is not None:
            flat = np.add.reduceat(self._cols_buf.reshape(-1), self._concat_starts)
            return flat.reshape(self.num_replicas, self.num_pes)
        # repro: noqa[HOT003] -- degenerate-partition fallback: the concatenated reduceat above serves every non-degenerate iteration
        return np.stack(
            # repro: noqa[HOT003] -- same fallback path as the stack above
            [
                self._stripe_loads(r, self._cols_buf[r])
                for r in range(self.num_replicas)
            ]
        )

    def _fill_columns(self) -> None:
        """Copy every application's current column loads into the buffer."""
        # repro: noqa[HOT001] -- O(R) calls into per-replica application objects; column_loads() is a Python-protocol method, the copy itself is one vectorized np.copyto per replica
        for r in range(self.num_replicas):
            np.copyto(self._cols_buf[r], self.applications[r].column_loads())

    def _average_lb_cost(self, replica: int) -> float:
        measured = self.load_balancers[replica].average_cost
        if measured > 0.0:
            return measured
        return self.initial_lb_cost_estimates[replica]

    def _build_context(
        self, replica: int, iteration: int, stripe_loads: np.ndarray
    ) -> LBContext:
        workloads = stripe_loads * self.applications[replica].flop_per_load_unit
        return LBContext(
            iteration=iteration,
            # repro: noqa[HOT002] -- LBContext's contract is a tuple of Python floats (solo-identical hashing); built once per LB decision, not per iteration
            pe_workloads=tuple(workloads.tolist()),
            wir_views=self.wir_db.replica(replica).views(),
            last_lb_iteration=self._last_lb_iteration[replica],
            accumulated_degradation=self.degradation.degradation_of(replica),
            average_lb_cost=self._average_lb_cost(replica),
            pe_speed=self.state.speed,
            total_iterations=self._total_iterations,
        )

    # ------------------------------------------------------------------
    def _execute_lb_step(
        self,
        r: int,
        iteration: int,
        new_stripe_loads: np.ndarray,
        stripe_loads: np.ndarray,
        lb_reports: List[List[LBStepReport]],
        context: Optional[LBContext] = None,
    ) -> None:
        """Run one replica's centralized LB step (solo-identical sequence)."""
        if context is None:
            context = self._build_context(r, iteration, new_stripe_loads[r])
        report = self.load_balancers[r].execute(
            context,
            self._cols_buf[r],
            current_partition=self.partitions[r],
        )
        lb_reports[r].append(report)
        self.partitions[r] = report.partition
        self._stripe_starts[r] = self._starts_of(report.partition)  # repro: noqa[FLOW-HOT] -- O(P) starts vector rebuilt once per LB step, not per iteration
        self._refresh_concat_starts()  # repro: noqa[FLOW-HOT] -- concatenated starts cache rebuilt once per LB step, not per iteration
        self._last_lb_iteration[r] = iteration + 1
        self._last_lb_arr[r] = iteration + 1
        if self._trigger_fast_mode is not None:
            self._avg_cost_buf[r] = self._average_lb_cost(r)
        self.degradation.reset_replica(r)
        self.trigger_policies[r].notify_balanced(context)
        rebalanced = self._stripe_loads(r, self._cols_buf[r])
        self.wir_estimates.reset_replica_after_migration(
            r, rebalanced * self.applications[r].flop_per_load_unit
        )
        stripe_loads[r] = rebalanced

    # ------------------------------------------------------------------
    def _run_chunked(self, iterations: int) -> BatchResult:
        """Execute the replicas as sequential budget-sized sub-batches.

        Each chunk builds a fresh full :class:`BatchRunner` over its slice
        of applications / seeds / policies and frees it before the next one
        starts, so the resident board state never exceeds the budget.
        Replicas share no state across the batch, so the concatenated
        result is bit-identical to one unchunked pass (guarded by
        ``tests/batch/test_batch_chunking.py``).
        """
        check_positive_int(iterations, "iterations")
        replicas: List[RunResult] = []
        for chunk, start in enumerate(range(0, self.num_replicas, self.chunk_size)):
            stop = min(start + self.chunk_size, self.num_replicas)
            wall_start = wall_clock()
            sub = BatchRunner(
                self.num_pes,
                self.applications[start:stop],
                seeds=self.seeds[start:stop],
                pe_speed=self._pe_speed,
                cost_model=self._cost_model,
                workload_policies=self.workload_policies[start:stop],
                trigger_policies=self.trigger_policies[start:stop],
                use_gossip=self._use_gossip,
                gossip_config=self._gossip_config,
                wir_smoothing=self._wir_smoothing,
                initial_lb_cost_estimates=self.initial_lb_cost_estimates[start:stop],
                partition_flop_per_column=self._partition_flop_per_column,
                bytes_per_load_unit=self._bytes_per_load_unit,
                profiler=self._profiler,
            )
            replicas.extend(sub.run(iterations).replicas)
            if self._on_chunk is not None:
                self._on_chunk(
                    chunk,
                    self.num_chunks,
                    stop - start,
                    wall_clock() - wall_start,
                )
        prof = self._profiler
        return BatchResult(
            replicas=replicas,
            seeds=self.seeds,
            profile=prof.profile() if prof is not None else None,
        )

    def run(self, iterations: int) -> BatchResult:
        """Execute ``iterations`` application iterations on every replica."""
        if self.num_chunks > 1:
            return self._run_chunked(iterations)
        check_positive_int(iterations, "iterations")
        wall_start = wall_clock()
        self._total_iterations = iterations
        R, P = self.num_replicas, self.num_pes
        state = self.state
        comm = self.clusters[0].comm.cost_model
        sync_cost = comm.collective(P, 8.0)
        flop_per_load = np.asarray(
            [app.flop_per_load_unit for app in self.applications], dtype=float
        )[:, None]

        lb_reports: List[List[LBStepReport]] = [[] for _ in range(R)]
        # Deferred per-iteration trace buffers (one bulk write per run
        # instead of R Python record calls per iteration).
        pe_times_buf = np.empty((iterations, R, P), dtype=float)
        elapsed_buf = np.empty((iterations, R), dtype=float)
        timestamp_buf = np.empty((iterations, R), dtype=float)

        fast_mode = self._trigger_fast_mode
        self._fill_columns()
        stripe_loads = self._stripe_loads_all()

        # Hot-loop stage attribution (repro.obs): identical probe pattern
        # and stage names to the solo runner, one `is not None` check per
        # probe when disabled.
        prof = self._profiler
        if prof is not None:
            prof.loop_start()

        for iteration in range(iterations):
            flop_per_pe = stripe_loads * flop_per_load

            # Line 10, batched: one bulk-synchronous compute phase of every
            # replica (identical elementwise ops to R solo compute_steps).
            t0 = prof.start() if prof is not None else 0
            start = state.clock.max(axis=1)
            pe_times = flop_per_pe / state.speed
            state.clock += pe_times
            state.busy_time += pe_times
            end = state.clock.max(axis=1) + sync_cost
            state.clock[:] = end[:, None]
            elapsed = end - start
            pe_times_buf[iteration] = pe_times
            elapsed_buf[iteration] = elapsed
            timestamp_buf[iteration] = end
            # repro: noqa[HOT001] -- two scalar attribute bumps per replica on plain-Python comm counters; vectorizing would need an array-backed facade for bookkeeping only
            for cluster in self.clusters:
                cluster.comm.num_collectives += 1
                cluster.comm.comm_time += sync_cost
            if prof is not None:
                prof.stop("compute_step", t0)
                t0 = prof.start()

            # Application dynamics (per replica: each owns its instance).
            # repro: noqa[HOT001] -- advance() is the application protocol boundary: each replica owns an opaque Python object; dynamics cannot be batched without changing the public StripedApplication protocol
            for app in self.applications:
                app.advance()
            if prof is not None:
                prof.stop("advance", t0)
                t0 = prof.start()
            self._fill_columns()
            new_stripe_loads = self._stripe_loads_all()
            if prof is not None:
                prof.stop("stripe_sum", t0)
                t0 = prof.start()

            # WIR estimation and dissemination, batched over all replicas.
            rates = self.wir_estimates.observe(new_stripe_loads * flop_per_load)
            self.wir_db.publish_all(rates)
            if prof is not None:
                prof.stop("wir_update", t0)
                t0 = prof.start()
            self.wir_db.disseminate()
            if prof is not None:
                prof.stop("gossip_round", t0)
                t0 = prof.start()

            # Lines 11-15, batched: every replica's degradation accumulates
            # in one vectorized update.
            degradations = self.degradation.observe(elapsed)

            # Line 16: the trigger decision diverges per replica.  For the
            # degradation-trigger family, `degradation >= margin * avg
            # cost` is a necessary firing condition (the ULBA overhead of
            # Eq. 11 only raises the threshold), so one vectorized compare
            # selects the candidate replicas and only those pay the full
            # per-replica threshold (and context, if they fire); custom
            # triggers get the generic per-replica path.  The LB step
            # itself charges through the replica's cluster facade into the
            # shared (R, P) state.
            if fast_mode is not None:
                base_thresholds = self._trigger_margins * self._avg_cost_buf
                candidates = np.flatnonzero(
                    (iteration > self._last_lb_arr)
                    & (degradations >= base_thresholds)
                )
                fired = []
                # repro: noqa[HOT001] -- iterates only the trigger *candidates* (vectorized pre-filter above); empty on almost every iteration
                for r in candidates:
                    r = int(r)
                    threshold = float(base_thresholds[r])
                    if fast_mode == "ulba":
                        trigger = self.trigger_policies[r]
                        n = trigger.detector.overloading_count(
                            self.wir_db.known_values(r, 0)
                        )
                        if 0 < n < P:
                            workloads = (
                                new_stripe_loads[r]
                                * self.applications[r].flop_per_load_unit
                            )
                            threshold = threshold + (
                                trigger.alpha
                                * n
                                / (P - n)
                                # repro: noqa[HOT002] -- sequential Python-float sum is bit-identical to the solo trigger's tuple sum; np.sum's pairwise summation rounds differently
                                * sum(workloads.tolist())
                                / (state.speed * P)
                            )
                    if self.degradation.degradation_of(r) >= threshold:
                        fired.append(r)
                np.copyto(stripe_loads, new_stripe_loads)
                if prof is not None:
                    prof.stop("lb_decide", t0)
                # repro: noqa[HOT001] -- iterates only replicas whose trigger fired; LB steps are rare by design (degradation-gated)
                for r in fired:
                    t0 = prof.start() if prof is not None else 0
                    self._execute_lb_step(  # repro: noqa[FLOW-HOT] -- LB-step cadence: reached only for replicas whose degradation trigger fired
                        r, iteration, new_stripe_loads, stripe_loads, lb_reports
                    )
                    if prof is not None:
                        prof.stop("lb_apply", t0)
            else:
                if prof is not None:
                    prof.stop("lb_decide", t0)
                # repro: noqa[HOT001] -- generic-trigger fallback: custom trigger policies are per-replica Python objects; the vectorized fast path above covers the paper's trigger family
                for r in range(R):
                    t0 = prof.start() if prof is not None else 0
                    context = self._build_context(r, iteration, new_stripe_loads[r])
                    fire = self.trigger_policies[r].should_balance(context)
                    if prof is not None:
                        prof.stop("lb_decide", t0)
                    if fire:
                        t0 = prof.start() if prof is not None else 0
                        self._execute_lb_step(  # repro: noqa[FLOW-HOT] -- LB-step cadence: reached only when the replica's trigger fired
                            r,
                            iteration,
                            new_stripe_loads,
                            stripe_loads,
                            lb_reports,
                            context=context,
                        )
                        if prof is not None:
                            prof.stop("lb_apply", t0)
                    else:
                        stripe_loads[r] = new_stripe_loads[r]

        if prof is not None:
            prof.loop_stop()

        # Materialize the deferred iteration records (same float values the
        # solo cluster would have recorded live; tolist() already yields
        # Python floats, so the records are built without per-element
        # conversion).
        results: List[RunResult] = []
        for r in range(R):
            trace = self.clusters[r].trace
            elapsed_list = elapsed_buf[:, r].tolist()
            timestamp_list = timestamp_buf[:, r].tolist()
            pe_times_list = pe_times_buf[:, r, :].tolist()
            trace.iterations.extend(
                IterationRecord(
                    iteration=iteration,
                    elapsed=elapsed_list[iteration],
                    pe_compute_times=tuple(pe_times_list[iteration]),
                    timestamp=timestamp_list[iteration],
                )
                for iteration in range(iterations)
            )
            results.append(
                RunResult(
                    trace=trace,
                    lb_reports=lb_reports[r],
                    policy_name=self.workload_policies[r].name,
                    trigger_name=self.trigger_policies[r].name,
                )
            )
        if self._on_chunk is not None:
            self._on_chunk(0, 1, R, wall_clock() - wall_start)
        return BatchResult(
            replicas=results,
            seeds=self.seeds,
            profile=prof.profile() if prof is not None else None,
        )
