"""Structured outcome of one replica-batched run.

The paper's figures are replica-averaged curves with confidence bands;
:class:`BatchResult` therefore keeps both layers: the full per-replica
:class:`~repro.runtime.skeleton.RunResult` objects (each bit-identical to a
solo run with that replica's seed) and the cross-replica aggregates --
means and normal-approximation confidence intervals over scalar outcomes,
plus replica-stacked and replica-averaged trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.runtime.skeleton import RunResult
from repro.utils.stats import mean_confidence_interval

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs is optional)
    from repro.obs.profiler import StageProfile

__all__ = ["BatchResult"]


@dataclass
class BatchResult:
    """Per-replica results plus cross-replica aggregates of one batch run."""

    #: One :class:`RunResult` per replica, in seed order; replica ``r`` is
    #: bit-identical to a solo run with ``seeds[r]``.
    replicas: List[RunResult] = field(default_factory=list)
    #: The gossip/workload seed of every replica.
    seeds: Tuple = ()
    #: Per-stage wall-time attribution of the batched hot loop (all chunks
    #: merged), or ``None`` when the run was not profiled.
    profile: "Optional[StageProfile]" = None

    # ------------------------------------------------------------------
    @property
    def num_replicas(self) -> int:
        """Number of replicas in the batch."""
        return len(self.replicas)

    def __getitem__(self, replica: int) -> RunResult:
        return self.replicas[replica]

    def __iter__(self):
        return iter(self.replicas)

    # ------------------------------------------------------------------
    def total_times(self) -> np.ndarray:
        """Per-replica total virtual time (seconds)."""
        return np.asarray([r.total_time for r in self.replicas], dtype=float)

    def lb_calls(self) -> np.ndarray:
        """Per-replica number of LB invocations."""
        return np.asarray([r.num_lb_calls for r in self.replicas], dtype=int)

    def mean_utilizations(self) -> np.ndarray:
        """Per-replica time-weighted average PE utilization."""
        return np.asarray([r.mean_utilization for r in self.replicas], dtype=float)

    def utilization_trajectories(self) -> np.ndarray:
        """``(R, iterations)`` per-iteration utilization of every replica."""
        return np.stack([r.utilization_series() for r in self.replicas])

    def mean_utilization_trajectory(self) -> np.ndarray:
        """Replica-averaged per-iteration utilization (the Fig. 4b curve)."""
        return self.utilization_trajectories().mean(axis=0)

    def iteration_time_trajectories(self) -> np.ndarray:
        """``(R, iterations)`` per-iteration durations of every replica."""
        return np.stack(
            [r.trace.iteration_time_series() for r in self.replicas]
        )

    # ------------------------------------------------------------------
    def aggregate(self, confidence: float = 0.95) -> Dict[str, float]:
        """Cross-replica mean and CI half-width of the scalar outcomes.

        Keys: ``total_time`` / ``mean_utilization`` / ``lb_calls``, each
        with a ``*_ci`` companion (normal-approximation half-width at
        ``confidence``), plus ``replicas``.
        """
        time_mean, time_ci = mean_confidence_interval(
            self.total_times(), confidence=confidence
        )
        util_mean, util_ci = mean_confidence_interval(
            self.mean_utilizations(), confidence=confidence
        )
        calls_mean, calls_ci = mean_confidence_interval(
            self.lb_calls(), confidence=confidence
        )
        return {
            "replicas": self.num_replicas,
            "total_time": time_mean,
            "total_time_ci": time_ci,
            "mean_utilization": util_mean,
            "mean_utilization_ci": util_ci,
            "lb_calls": calls_mean,
            "lb_calls_ci": calls_ci,
        }

    def summary(self) -> Dict[str, object]:
        """Flat summary row: aggregates plus the seeds of the batch."""
        info = dict(self.aggregate())
        info["seeds"] = tuple(self.seeds)
        if self.replicas:
            info["policy"] = self.replicas[0].policy_name
            info["trigger"] = self.replicas[0].trigger_name
        return info
