"""The project's clock facade: every sanctioned wall-clock read.

Simulated results must never depend on host timing, so the determinism
linter (rule ``DET004``/``DET005`` in :mod:`repro.analysis`) rejects direct
``time.*`` and ``datetime.now`` calls outside ``repro/obs`` and
``repro/resilience``.  Code that legitimately measures elapsed wall time --
duration fields on events, campaign telemetry, trace stamps -- imports
these helpers instead.  Funnelling every read through one module keeps the
exemption surface auditable and gives tests a single place to monkeypatch
when they need a frozen clock.
"""

from __future__ import annotations

import time
from datetime import datetime, timezone

__all__ = ["epoch_ns", "utc_timestamp", "wall_clock", "wall_clock_ns"]


def wall_clock() -> float:
    """Monotonic elapsed-time reading in seconds (``time.perf_counter``)."""
    return time.perf_counter()


def wall_clock_ns() -> int:
    """Monotonic elapsed-time reading in ns (``time.perf_counter_ns``)."""
    return time.perf_counter_ns()


def epoch_ns() -> int:
    """Unix epoch in nanoseconds -- for trace stamps that must correlate
    across processes (``perf_counter`` origins differ per process)."""
    return time.time_ns()


def utc_timestamp() -> str:
    """ISO-8601 UTC timestamp for audit fields (quarantine records etc.).

    Always UTC: local-timezone stamps make artifacts differ across hosts.
    """
    # repro: noqa[DET005] -- this is the one sanctioned datetime.now call: it pins UTC and exists so nothing else needs one
    return datetime.now(timezone.utc).isoformat()
