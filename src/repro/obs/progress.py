"""Live campaign telemetry: the ``repro campaign --progress`` TTY line.

Campaigns used to report progress as one printed line per completed cell --
fine for 12 cells, unreadable for 10^4.  :class:`CampaignProgress`
subscribes to the ``"campaign_cell"`` events of the campaign runner and
maintains a single carriage-return-overwritten status line::

    [ 37/120  30.8%] 12.4 cells/s  ETA 0:07  workers(4) =#%+

showing completed/total cells, the rolling throughput, the estimated time
to completion and the per-worker occupancy (one sparkline glyph per worker
pid, scaled by how many cells each has completed -- a cold worker shows as
a low glyph, which is exactly the parallel-campaign-regression signature
the ROADMAP wants visible).

Rendering is split from I/O: :func:`render_progress_line` is a pure
function over plain numbers (unit-testable, reusable), while
:class:`CampaignProgress` owns the clock, the event plumbing and the
``\\r`` terminal discipline (it writes nothing when the stream is not a
TTY unless forced, so piped output stays clean).
"""

from __future__ import annotations

import sys
import time
from typing import Dict, Mapping, Optional, TextIO

from repro.viz.ascii import sparkline

__all__ = ["CampaignProgress", "render_progress_line"]


def _format_eta(seconds: float) -> str:
    """``M:SS`` / ``H:MM:SS`` form of a non-negative duration."""
    total = max(int(round(seconds)), 0)
    hours, rest = divmod(total, 3600)
    minutes, secs = divmod(rest, 60)
    if hours:
        return f"{hours}:{minutes:02d}:{secs:02d}"
    return f"{minutes}:{secs:02d}"


def render_progress_line(
    done: int,
    total: int,
    elapsed_s: float,
    per_worker: Mapping[int, int],
    *,
    width: int = 8,
) -> str:
    """Render one campaign progress line from plain numbers.

    Parameters
    ----------
    done, total:
        Completed and overall cell counts of this invocation.
    elapsed_s:
        Wall seconds since the campaign started executing.
    per_worker:
        Cells completed per worker pid; drawn as one sparkline glyph per
        worker (insertion order), capped at ``width`` workers.
    """
    total = max(total, 1)
    fraction = done / total
    rate = done / elapsed_s if elapsed_s > 0 else 0.0
    eta = (total - done) / rate if rate > 0 else float("inf")
    eta_text = _format_eta(eta) if eta != float("inf") else "-:--"
    digits = len(str(total))
    line = (
        f"[{done:>{digits}d}/{total}  {fraction:>5.1%}] "
        f"{rate:6.1f} cells/s  ETA {eta_text}"
    )
    if per_worker:
        counts = list(per_worker.values())[:width]
        line += f"  workers({len(per_worker)}) " + sparkline(
            counts, width=width, lower=0.0
        )
    return line


class CampaignProgress:
    """Maintains the live progress line from ``"campaign_cell"`` events.

    Subscribe it to the campaign event bus and let the runner drive it::

        bus = EventBus()
        progress = CampaignProgress(total_cells=len(pending))
        bus.on("campaign_cell", progress.update)
        run_campaign(spec, events=bus, ...)
        progress.finish()

    Parameters
    ----------
    total_cells:
        Cells this invocation will execute (resumed cells excluded).
    stream:
        Output stream; defaults to ``sys.stderr``.
    force:
        Render even when the stream is not a TTY (tests, CI logs).  Without
        it a non-TTY stream gets no per-cell output at all -- the final
        summary still prints -- so redirected campaign logs stay clean.
    min_interval_s:
        Minimum seconds between repaints (drops intermediate frames on
        fast campaigns; the final state always renders via :meth:`finish`).
    """

    def __init__(
        self,
        total_cells: int,
        *,
        stream: Optional[TextIO] = None,
        force: bool = False,
        min_interval_s: float = 0.1,
    ) -> None:
        self.total = int(total_cells)
        self.done = 0
        self.per_worker: Dict[int, int] = {}
        self._stream = stream if stream is not None else sys.stderr
        self._active = force or bool(getattr(self._stream, "isatty", lambda: False)())
        self._min_interval_s = float(min_interval_s)
        self._started = time.perf_counter()
        self._last_paint = float("-inf")
        self._painted = False

    # ------------------------------------------------------------------
    def update(self, event: object) -> None:
        """Consume one ``"campaign_cell"`` event (or any object with
        ``worker_pid``) and repaint the line when due."""
        self.done += 1
        pid = int(getattr(event, "worker_pid", 0))
        self.per_worker[pid] = self.per_worker.get(pid, 0) + 1
        now = time.perf_counter()
        if now - self._last_paint >= self._min_interval_s:
            self._paint(now)

    def line(self) -> str:
        """The current progress line (pure render, no I/O)."""
        return render_progress_line(
            self.done,
            self.total,
            time.perf_counter() - self._started,
            self.per_worker,
        )

    def _paint(self, now: float) -> None:
        if not self._active:
            return
        self._stream.write("\r" + self.line() + "\x1b[K")
        self._stream.flush()
        self._last_paint = now
        self._painted = True

    def finish(self) -> None:
        """Paint the final state and terminate the line with a newline."""
        if not self._active:
            return
        self._paint(time.perf_counter())
        if self._painted:
            self._stream.write("\n")
            self._stream.flush()
