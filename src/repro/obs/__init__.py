"""Observability layer: metrics, hot-loop profiling and Chrome tracing.

The paper's central evidence is observational -- Figure 4b is a
per-iteration utilization trace -- yet until this package the repository
could only observe *virtual* time (:class:`~repro.simcluster.tracing.ClusterTrace`),
never where the *wall-clock* time of a run actually went.  ``repro.obs``
closes that gap with three independent, composable instruments:

:class:`MetricsRegistry`
    Counters, gauges and fixed-bucket histograms as plain dicts + NumPy
    arrays.  Snapshots are JSON-serializable and **mergeable**, so campaign
    workers ship theirs back through the existing multiprocessing results
    and the parent folds them into one registry.
:class:`StageProfiler`
    Wall-clock attribution of the named hot-loop stages of
    :class:`~repro.runtime.skeleton.IterativeRunner` and
    :class:`~repro.batch.runner.BatchRunner` (compute step, gossip round,
    stripe reduceat, WIR update, LB decide/apply).  The runners guard every
    probe behind a single ``profiler is not None`` check, so the disabled
    default adds no measurable work to the hot loop.
:class:`TraceWriter`
    Chrome trace-event JSON (the format ``chrome://tracing`` and Perfetto
    load) built from profiler spans plus
    :class:`~repro.api.events.EventBus` subscriptions: solo-run stages,
    batch chunks and campaign cells, one track per worker pid.

:class:`CampaignProgress` renders the live one-line campaign telemetry of
``repro campaign --progress`` (cells/s, ETA, worker occupancy) from
``"campaign_cell"`` events.

Everything here is zero-cost when off: the default
:class:`~repro.api.config.ObsConfig` disables all three instruments and the
execution layers then skip the instrumentation entirely (golden seeded runs
stay bit-identical; the core bench holds the off-overhead to <= 2 %).
"""

from repro.obs.clock import epoch_ns, utc_timestamp, wall_clock, wall_clock_ns
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import StageProfile, StageProfiler, merge_stage_snapshots
from repro.obs.progress import CampaignProgress, render_progress_line
from repro.obs.trace import TraceWriter, validate_trace

__all__ = [
    "CampaignProgress",
    "MetricsRegistry",
    "StageProfile",
    "StageProfiler",
    "TraceWriter",
    "epoch_ns",
    "merge_stage_snapshots",
    "utc_timestamp",
    "wall_clock",
    "wall_clock_ns",
    "render_progress_line",
    "validate_trace",
]
