"""Wall-clock stage attribution of the execution hot loops.

The ROADMAP's "compile the inner loop" item needs to know *which* stage of
the per-iteration pipeline dominates -- compute step, gossip merge, stripe
reduceat, WIR update or the LB decision -- before anything is worth
compiling.  :class:`StageProfiler` answers that with per-stage wall-time
totals and counts gathered by ``time.perf_counter_ns`` probes that the
runners place around their named stages::

    prof = self._profiler            # None when profiling is off
    ...
    t0 = prof.start() if prof is not None else 0
    step = self.cluster.compute_step(...)
    if prof is not None:
        prof.stop("compute_step", t0)

The disabled path is a single ``is not None`` check per probe -- no
allocation, no call -- which is what keeps the default run bit-identical
*and* within the <= 2 % off-overhead budget asserted by
``benchmarks/test_bench_micro.py``.

A finished run exposes its profile as an immutable :class:`StageProfile`
(on :attr:`repro.runtime.skeleton.RunResult.profile` and
:attr:`repro.batch.result.BatchResult.profile`): totals, counts, the
enclosing loop time, share-of-loop coverage and a ready-to-print stage
table.  Snapshots are plain dicts, so campaign workers ship them through
multiprocessing results and :func:`merge_stage_snapshots` folds them back
together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import Dict, Iterable, Mapping, Optional

__all__ = ["StageProfile", "StageProfiler", "merge_stage_snapshots"]


@dataclass(frozen=True)
class StageProfile:
    """Immutable per-stage wall-time attribution of one (or many) runs."""

    #: Stage name -> accumulated wall time in nanoseconds.
    totals_ns: Mapping[str, int] = field(default_factory=dict)
    #: Stage name -> number of timed entries into the stage.
    counts: Mapping[str, int] = field(default_factory=dict)
    #: Wall time of the enclosing hot loop (ns); 0 when it was not measured.
    loop_ns: int = 0

    # ------------------------------------------------------------------
    @property
    def total_ns(self) -> int:
        """Sum of all stage totals (ns)."""
        return sum(self.totals_ns.values())

    def coverage(self) -> float:
        """Fraction of the measured loop time the stages account for.

        The acceptance bar of the observability layer: the named stages must
        explain >= 90 % of where the loop's wall clock went (the remainder
        is interpreter glue between the probes).  Returns 0.0 when the loop
        time was not measured.
        """
        if self.loop_ns <= 0:
            return 0.0
        return self.total_ns / self.loop_ns

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot (stage -> {total_ns, count}, loop_ns)."""
        return {
            "stages": {
                name: {"total_ns": int(self.totals_ns[name]), "count": int(self.counts[name])}
                for name in sorted(self.totals_ns)
            },
            "loop_ns": int(self.loop_ns),
        }

    def stage_table(self) -> str:
        """Human-readable stage table, largest share first.

        One line per stage -- total milliseconds, share of the loop, count
        and mean microseconds per entry -- plus a coverage footer.
        """
        if not self.totals_ns:
            return "(no stages profiled)"
        width = max(len(name) for name in self.totals_ns)
        denom = self.loop_ns if self.loop_ns > 0 else max(self.total_ns, 1)
        lines = [
            f"{'stage':<{width}}  {'total [ms]':>10}  {'share':>6}  {'count':>7}  {'mean [us]':>10}"
        ]
        for name, total in sorted(self.totals_ns.items(), key=lambda kv: -kv[1]):
            count = self.counts.get(name, 0)
            mean_us = (total / count / 1e3) if count else 0.0
            lines.append(
                f"{name:<{width}}  {total / 1e6:>10.3f}  {total / denom:>5.1%}  "
                f"{count:>7d}  {mean_us:>10.2f}"
            )
        if self.loop_ns > 0:
            lines.append(
                f"{'(loop)':<{width}}  {self.loop_ns / 1e6:>10.3f}  "
                f"coverage {self.coverage():.1%}"
            )
        return "\n".join(lines)


class StageProfiler:
    """Accumulates per-stage wall time from explicit start/stop probes.

    The probe pair is split (``t0 = prof.start()`` ... ``prof.stop(name,
    t0)``) instead of offered as a context manager because the hot loops
    cannot afford a ``with`` block's frame churn per stage per iteration.
    When a :class:`~repro.obs.trace.TraceWriter` is attached, every ``stop``
    also records one complete trace event, so the same probes feed both the
    aggregate table and the Chrome timeline.
    """

    __slots__ = ("totals_ns", "counts", "loop_ns", "trace", "_loop_t0")

    def __init__(self, trace: Optional[object] = None) -> None:
        self.totals_ns: Dict[str, int] = {}
        self.counts: Dict[str, int] = {}
        self.loop_ns: int = 0
        #: Optional TraceWriter receiving one complete event per stop().
        self.trace = trace
        self._loop_t0: Optional[int] = None

    # ------------------------------------------------------------------
    @staticmethod
    def start() -> int:
        """Timestamp origin of one stage entry (``perf_counter_ns``)."""
        return perf_counter_ns()

    def stop(self, stage: str, t0: int) -> None:
        """Close the stage entry opened at ``t0`` and accumulate it."""
        now = perf_counter_ns()
        dt = now - t0
        self.totals_ns[stage] = self.totals_ns.get(stage, 0) + dt
        self.counts[stage] = self.counts.get(stage, 0) + 1
        if self.trace is not None:
            self.trace.complete(stage, t0, dt, cat="stage")

    # ------------------------------------------------------------------
    def loop_start(self) -> None:
        """Mark the beginning of the enclosing hot loop."""
        self._loop_t0 = perf_counter_ns()

    def loop_stop(self) -> None:
        """Accumulate the wall time of the loop marked by :meth:`loop_start`."""
        if self._loop_t0 is not None:
            self.loop_ns += perf_counter_ns() - self._loop_t0
            self._loop_t0 = None

    # ------------------------------------------------------------------
    def profile(self) -> StageProfile:
        """Immutable view of what has been accumulated so far."""
        return StageProfile(
            totals_ns=dict(self.totals_ns),
            counts=dict(self.counts),
            loop_ns=self.loop_ns,
        )

    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable snapshot (see :meth:`StageProfile.to_dict`)."""
        return self.profile().to_dict()

    def merge(self, snapshot: Mapping[str, object]) -> "StageProfiler":
        """Fold a worker's :meth:`snapshot` into this profiler (sums)."""
        for name, entry in dict(snapshot.get("stages", {})).items():
            self.totals_ns[name] = self.totals_ns.get(name, 0) + int(entry["total_ns"])
            self.counts[name] = self.counts.get(name, 0) + int(entry["count"])
        self.loop_ns += int(snapshot.get("loop_ns", 0))
        return self


def merge_stage_snapshots(
    snapshots: Iterable[Mapping[str, object]],
) -> StageProfile:
    """Merge profiler snapshots from many runs/workers into one profile."""
    merged = StageProfiler()
    for snapshot in snapshots:
        merged.merge(snapshot)
    return merged.profile()
