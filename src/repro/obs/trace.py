"""Chrome trace-event JSON emission (Perfetto / ``chrome://tracing``).

A :class:`TraceWriter` collects *complete* events (spans with a start and a
duration), *instant* events (points in time, e.g. an LB call) and *counter*
events (sampled values), then serializes them in the Trace Event Format's
JSON-object flavour::

    {"traceEvents": [{"name": "compute_step", "ph": "X", "ts": ..., "dur": ...,
                      "pid": 4242, "tid": 0, "cat": "stage", "args": {}}, ...],
     "displayTimeUnit": "ms", "otherData": {...}}

which both Perfetto and ``chrome://tracing`` open directly.  The writers
feed from two sources: :class:`~repro.obs.profiler.StageProfiler` probes
(one span per hot-loop stage entry) and
:class:`~repro.api.events.EventBus` subscriptions (LB steps, phases, batch
chunks, campaign cells).  Campaign workers build event lists with
epoch-based timestamps and ship them back through the multiprocessing
results; :meth:`TraceWriter.extend` folds them in, and the per-event
``pid`` gives each worker its own track in the viewer.

Timestamps are taken in nanoseconds (``perf_counter_ns`` within one
process, ``time_ns`` across processes -- never mix the two in one writer)
and normalized to microseconds relative to the earliest event at
serialization time, so traces start at t=0 regardless of clock source.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Union

__all__ = ["TraceWriter", "validate_trace"]

#: One raw trace event (internal: ``ts``/``dur`` still in nanoseconds).
RawEvent = Dict[str, object]


class TraceWriter:
    """Accumulates trace events and serializes Chrome trace-event JSON.

    Parameters
    ----------
    pid:
        Default process id stamped on events (defaults to ``os.getpid()``).
        The pid is what separates tracks in the viewer, so campaign workers
        must record their own.
    max_events:
        Safety cap on retained events; once reached, further span/instant
        events are counted in ``otherData.dropped_events`` instead of
        stored (metadata events are always kept).  Long campaigns stay
        loadable in the viewer instead of producing a gigabyte of JSON.
    """

    def __init__(self, *, pid: Optional[int] = None, max_events: int = 200_000) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.pid = os.getpid() if pid is None else int(pid)
        self.max_events = int(max_events)
        self._events: List[RawEvent] = []
        self._metadata: List[RawEvent] = []
        self.dropped = 0

    # ------------------------------------------------------------------
    def _append(self, event: RawEvent) -> None:
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return
        self._events.append(event)

    def complete(
        self,
        name: str,
        start_ns: int,
        dur_ns: int,
        *,
        cat: str = "span",
        pid: Optional[int] = None,
        tid: int = 0,
        args: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Record one complete event (``ph: "X"``): a span with a duration."""
        event: RawEvent = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": int(start_ns),
            "dur": max(int(dur_ns), 0),
            "pid": self.pid if pid is None else int(pid),
            "tid": int(tid),
        }
        if args:
            event["args"] = dict(args)
        self._append(event)

    def instant(
        self,
        name: str,
        ts_ns: int,
        *,
        cat: str = "event",
        pid: Optional[int] = None,
        tid: int = 0,
        args: Optional[Mapping[str, object]] = None,
    ) -> None:
        """Record one instant event (``ph: "i"``, thread-scoped)."""
        event: RawEvent = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",
            "ts": int(ts_ns),
            "pid": self.pid if pid is None else int(pid),
            "tid": int(tid),
        }
        if args:
            event["args"] = dict(args)
        self._append(event)

    def counter(
        self,
        name: str,
        ts_ns: int,
        values: Mapping[str, float],
        *,
        pid: Optional[int] = None,
    ) -> None:
        """Record one counter sample (``ph: "C"``, plotted as a track)."""
        self._append(
            {
                "name": name,
                "ph": "C",
                "ts": int(ts_ns),
                "pid": self.pid if pid is None else int(pid),
                "args": {key: float(value) for key, value in values.items()},
            }
        )

    # ------------------------------------------------------------------
    def set_process_name(self, name: str, *, pid: Optional[int] = None) -> None:
        """Label a pid's track group in the viewer (``process_name`` metadata)."""
        self._metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": self.pid if pid is None else int(pid),
                "args": {"name": name},
            }
        )

    def set_thread_name(
        self, name: str, *, tid: int = 0, pid: Optional[int] = None
    ) -> None:
        """Label one thread track within a pid's group."""
        self._metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": self.pid if pid is None else int(pid),
                "tid": int(tid),
                "args": {"name": name},
            }
        )

    # ------------------------------------------------------------------
    def events(self) -> List[RawEvent]:
        """Copy of the raw (nanosecond-timestamped) non-metadata events."""
        return [dict(event) for event in self._events]

    def extend(self, events: Iterable[Mapping[str, object]]) -> None:
        """Fold raw events from another writer (e.g. a campaign worker) in.

        The events keep their own ``pid``/``tid``/timestamps -- this is the
        cross-process merge path, so the shipped timestamps must share a
        clock (``time.time_ns``) with every other writer being merged.
        """
        for event in events:
            self._append(dict(event))

    @property
    def num_events(self) -> int:
        """Number of retained non-metadata events."""
        return len(self._events)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """The Chrome trace-event JSON object (timestamps in microseconds)."""
        origin = min((int(e["ts"]) for e in self._events), default=0)
        trace_events: List[Dict[str, object]] = []
        for event in self._events:
            out = dict(event)
            out["ts"] = (int(event["ts"]) - origin) / 1e3
            if "dur" in out:
                out["dur"] = int(event["dur"]) / 1e3
            trace_events.append(out)
        trace_events.extend(dict(event) for event in self._metadata)
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "generator": "repro.obs.TraceWriter",
                "dropped_events": self.dropped,
            },
        }

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """Serialized trace (compact by default; traces get large)."""
        return json.dumps(self.to_dict(), indent=indent)

    def write(self, path: Union[str, Path]) -> Path:
        """Write the trace JSON to ``path`` (parents created) and return it.

        The write is atomic (temp file + rename), so a run killed mid-write
        leaves the previous trace intact instead of a torn file.
        """
        from repro.utils.io import atomic_write_text

        return atomic_write_text(path, self.to_json() + "\n")


def validate_trace(
    data: Mapping[str, object], *, require_stages: Iterable[str] = ()
) -> List[str]:
    """Structurally validate a Chrome trace-event JSON object.

    Checks the JSON-object flavour of the Trace Event Format: a
    ``traceEvents`` list whose members carry the per-phase required keys
    (``X`` needs ``ts`` + ``dur``, ``i``/``C`` need ``ts``, every non-``M``
    event needs a ``pid``), with finite non-negative timings.  When
    ``require_stages`` names stages, each must appear as >= 1 complete
    event.  Returns a list of human-readable problems -- empty means valid
    (the CI observability smoke step asserts exactly that).
    """
    problems: List[str] = []
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    seen_complete: Dict[str, int] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index} is not an object")
            continue
        phase = event.get("ph")
        if not isinstance(event.get("name"), str) and phase != "C":
            problems.append(f"event {index} has no name")
        if phase not in {"X", "B", "E", "i", "I", "C", "M"}:
            problems.append(f"event {index} has unsupported phase {phase!r}")
            continue
        if phase == "M":
            continue
        if not isinstance(event.get("pid"), int):
            problems.append(f"event {index} ({event.get('name')!r}) has no integer pid")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {index} ({event.get('name')!r}) has invalid ts {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(
                    f"event {index} ({event.get('name')!r}) has invalid dur {dur!r}"
                )
            name = event.get("name")
            if isinstance(name, str):
                seen_complete[name] = seen_complete.get(name, 0) + 1
    for stage in require_stages:
        if not seen_complete.get(stage):
            problems.append(f"no complete event for required stage {stage!r}")
    return problems
