"""Process-local metrics: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` is deliberately minimal -- plain dicts plus NumPy
count arrays, no label sets, no background threads -- because its job is to
be cheap enough to leave on in library code and simple enough to merge
across processes:

* a **counter** accumulates monotonically (``inc``);
* a **gauge** holds the latest value of something (``set_gauge``);
* a **histogram** buckets observations into *fixed* bin edges declared at
  registration time, which is what makes histograms from different worker
  processes mergeable by plain elementwise addition.

``snapshot()`` returns a JSON-serializable plain-dict view, ``merge`` folds
another registry (or a snapshot shipped back from a worker through the
campaign's multiprocessing results) into this one, and ``from_snapshot``
rebuilds a registry from persisted JSON.  Naming convention: path-like
lowercase keys, e.g. ``"run/iterations"`` or ``"campaign/worker/1234/cells"``.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Mapping, Optional, Sequence, Union

import numpy as np

__all__ = ["MetricsRegistry"]

#: A registry or the plain-dict snapshot of one.
Mergeable = Union["MetricsRegistry", Mapping[str, object]]


class MetricsRegistry:
    """Counters, gauges and fixed-bucket histograms with mergeable snapshots.

    Example
    -------
    >>> registry = MetricsRegistry()
    >>> registry.inc("run/iterations", 40)
    >>> registry.set_gauge("run/mean_utilization", 0.93)
    >>> registry.register_histogram("run/iteration_utilization", [0.0, 0.5, 0.9, 1.0])
    >>> registry.observe("run/iteration_utilization", [0.95, 0.97, 0.4])
    >>> registry.snapshot()["counters"]["run/iterations"]
    40
    """

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._hist_edges: Dict[str, np.ndarray] = {}
        self._hist_counts: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Counters and gauges.
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` (>= 0) to the counter ``name``, creating it at 0."""
        amount = float(amount)
        if amount < 0:
            raise ValueError(f"counter {name!r} cannot decrease (amount {amount})")
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = float(value)

    def counter(self, name: str) -> float:
        """Current value of a counter (0 when never incremented)."""
        return self._counters.get(name, 0.0)

    def gauge(self, name: str) -> Optional[float]:
        """Current value of a gauge, or ``None`` when never set."""
        return self._gauges.get(name)

    # ------------------------------------------------------------------
    # Histograms.
    # ------------------------------------------------------------------
    def register_histogram(self, name: str, edges: Sequence[float]) -> None:
        """Declare the fixed bin edges of histogram ``name``.

        ``edges`` must be strictly increasing and define ``len(edges) - 1``
        in-range bins; observations outside ``[edges[0], edges[-1]]`` land in
        two extra underflow/overflow bins so no sample is silently dropped.
        Re-registering with identical edges is a no-op; with different edges
        it is an error (merges rely on the bins being fixed).
        """
        arr = np.asarray(list(edges), dtype=float)
        if arr.size < 2 or not (np.diff(arr) > 0).all():
            raise ValueError(
                f"histogram {name!r} needs >= 2 strictly increasing edges, got {arr.tolist()}"
            )
        if name in self._hist_edges:
            if not np.array_equal(self._hist_edges[name], arr):
                raise ValueError(
                    f"histogram {name!r} already registered with different edges"
                )
            return
        self._hist_edges[name] = arr
        # Layout: [underflow, bin 0, ..., bin B-1, overflow].
        self._hist_counts[name] = np.zeros(arr.size + 1, dtype=np.int64)

    def observe(self, name: str, values: Union[float, Iterable[float]]) -> None:
        """Bucket one value or an array of values into histogram ``name``."""
        edges = self._hist_edges.get(name)
        if edges is None:
            raise KeyError(
                f"histogram {name!r} is not registered; call register_histogram first"
            )
        arr = np.atleast_1d(np.asarray(values, dtype=float))
        # searchsorted('right') maps v < edges[0] to 0 (underflow) and
        # v >= edges[-1] to len(edges) (overflow); the exact upper edge is
        # folded back into the last in-range bin.
        idx = np.searchsorted(edges, arr, side="right")
        idx[arr == edges[-1]] = edges.size - 1
        np.add.at(self._hist_counts[name], idx, 1)

    def histogram_counts(self, name: str) -> np.ndarray:
        """Copy of the count vector ``[underflow, bins..., overflow]``."""
        return self._hist_counts[name].copy()

    # ------------------------------------------------------------------
    # Snapshots and merging.
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable plain-dict view of every metric."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {
                name: {
                    "edges": self._hist_edges[name].tolist(),
                    "counts": self._hist_counts[name].tolist(),
                }
                for name in sorted(self._hist_edges)
            },
        }

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        """The snapshot as JSON text (stable key order)."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    @classmethod
    def from_snapshot(cls, data: Mapping[str, object]) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`snapshot` dict (inverse)."""
        registry = cls()
        registry.merge(data)
        return registry

    def merge(self, other: Mergeable) -> "MetricsRegistry":
        """Fold another registry (or snapshot dict) into this one.

        Counters and histogram counts add; gauges take the other side's
        value (last write wins -- merge workers in completion order).
        Histograms merge only when their edges agree exactly, which the
        fixed-at-registration contract guarantees for same-code workers.
        Returns ``self`` so merges chain.
        """
        data = other.snapshot() if isinstance(other, MetricsRegistry) else other
        for name, value in dict(data.get("counters", {})).items():
            self._counters[name] = self._counters.get(name, 0.0) + float(value)
        for name, value in dict(data.get("gauges", {})).items():
            self._gauges[name] = float(value)
        for name, hist in dict(data.get("histograms", {})).items():
            edges = list(hist["edges"])
            counts = np.asarray(hist["counts"], dtype=np.int64)
            self.register_histogram(name, edges)
            if counts.size != self._hist_counts[name].size:
                raise ValueError(
                    f"histogram {name!r} snapshot has {counts.size} counts, "
                    f"expected {self._hist_counts[name].size}"
                )
            self._hist_counts[name] += counts
        return self
