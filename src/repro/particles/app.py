"""The particle workload packaged as a :class:`StripedApplication`.

Per-column workload model: each particle costs ``flop_per_particle`` FLOP
per iteration (force evaluation, integration), plus a quadratic
near-neighbour term within the column (``flop_per_pair`` per intra-column
pair) that makes crowded columns super-linearly expensive -- the usual cost
profile of short-range interaction codes, and the reason particle clustering
causes severe load imbalance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.particles.system import ParticleSystem
from repro.utils.validation import check_non_negative, check_positive, check_positive_int

__all__ = ["ParticleConfig", "ParticleApplication"]


@dataclass(frozen=True)
class ParticleConfig:
    """Configuration of one particle-drift workload instance."""

    #: Number of PEs (stripes) the workload will be decomposed into.
    num_pes: int
    #: Domain columns per PE.
    columns_per_pe: int = 64
    #: Domain rows (only affects the box geometry, not the cost model).
    rows: int = 64
    #: Particles per PE (uniformly placed at start, i.e. balanced).
    particles_per_pe: int = 2_000
    #: Mean-flow velocity in cells per iteration.
    drift_velocity: Tuple[float, float] = (0.0, 0.0)
    #: Thermal displacement per iteration (standard deviation, in cells).
    thermal_speed: float = 0.25
    #: Fraction of the distance to the attractor covered per iteration.
    #: The default concentrates particles slowly enough that the imbalance
    #: grows over tens of iterations (the persistent regime ULBA targets).
    attractor_strength: float = 0.01
    #: Attractor position as a fraction of the domain width/height; ``None``
    #: disables the attractor (the workload then stays balanced).
    attractor_position: Optional[Tuple[float, float]] = (0.5, 0.5)
    #: FLOP charged per particle per iteration.
    flop_per_particle: float = 200.0
    #: FLOP charged per intra-column particle pair (crowding penalty).
    flop_per_pair: float = 0.02
    #: Randomness of the initial placement and the thermal motion.
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        check_positive_int(self.num_pes, "num_pes")
        check_positive_int(self.columns_per_pe, "columns_per_pe")
        check_positive_int(self.rows, "rows")
        check_positive_int(self.particles_per_pe, "particles_per_pe")
        check_non_negative(self.thermal_speed, "thermal_speed")
        check_non_negative(self.attractor_strength, "attractor_strength")
        check_positive(self.flop_per_particle, "flop_per_particle")
        check_non_negative(self.flop_per_pair, "flop_per_pair")
        if self.attractor_position is not None:
            fx, fy = self.attractor_position
            if not (0.0 <= fx <= 1.0 and 0.0 <= fy <= 1.0):
                raise ValueError(
                    "attractor_position must be expressed as fractions in [0, 1]"
                )

    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Total number of domain columns."""
        return self.num_pes * self.columns_per_pe

    @property
    def num_particles(self) -> int:
        """Total number of particles."""
        return self.num_pes * self.particles_per_pe


class ParticleApplication:
    """Particle-drift workload exposing the ``StripedApplication`` protocol.

    The workload unit of this application is "one particle-equivalent of
    work" (mirroring the erosion application, whose unit is one cell):
    ``flop_per_load_unit`` equals ``flop_per_particle`` and the per-column
    loads are ``count + pairs * flop_per_pair / flop_per_particle``.  Keeping
    the load unit tied to a migratable object means the runner's default
    migration cost (bytes per load unit) has the same meaning for both
    applications.
    """

    def __init__(self, config: ParticleConfig) -> None:
        self.config = config
        #: Conversion factor required by the StripedApplication protocol.
        self.flop_per_load_unit: float = config.flop_per_particle
        attractor = None
        if config.attractor_position is not None:
            attractor = (
                config.attractor_position[0] * (config.width - 1),
                config.attractor_position[1] * (config.rows - 1),
            )
        self.system = ParticleSystem(
            config.num_particles,
            width=config.width,
            height=config.rows,
            drift_velocity=config.drift_velocity,
            thermal_speed=config.thermal_speed,
            attractor=attractor,
            attractor_strength=config.attractor_strength,
            seed=config.seed,
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config: ParticleConfig) -> "ParticleApplication":
        """Symmetry with :class:`repro.erosion.app.ErosionApplication`."""
        return cls(config)

    # ------------------------------------------------------------------
    # StripedApplication protocol.
    # ------------------------------------------------------------------
    @property
    def num_columns(self) -> int:
        """Number of domain columns."""
        return self.config.width

    def column_loads(self) -> np.ndarray:
        """Per-column workload in particle-equivalents.

        The linear term is the particle count; the intra-column pair term is
        converted into particle-equivalents via the FLOP ratio so that crowded
        columns cost super-linearly more.
        """
        counts = self.system.column_counts()
        pairs = counts * (counts - 1.0) / 2.0
        return counts + pairs * (
            self.config.flop_per_pair / self.config.flop_per_particle
        )

    def advance(self) -> None:
        """Advance the particle dynamics by one iteration."""
        self.system.advance()

    # ------------------------------------------------------------------
    # Extra introspection used by tests and examples.
    # ------------------------------------------------------------------
    def total_load(self) -> float:
        """Total workload of the domain, in particle-equivalents."""
        return float(self.column_loads().sum())

    def total_flop(self) -> float:
        """Total workload of the domain, in FLOP."""
        return self.total_load() * self.flop_per_load_unit

    def concentration(self) -> float:
        """Max/mean per-column occupancy (grows as the attractor acts)."""
        return self.system.concentration()

    def particles_per_stripe(self, boundaries: np.ndarray) -> np.ndarray:
        """Particle counts per stripe for the given column ``boundaries``."""
        counts = self.system.column_counts()
        bounds = np.asarray(boundaries, dtype=int)
        if bounds[0] != 0 or bounds[-1] != self.config.width:
            raise ValueError("boundaries must start at 0 and end at the domain width")
        return np.asarray(
            [counts[bounds[i] : bounds[i + 1]].sum() for i in range(len(bounds) - 1)]
        )
