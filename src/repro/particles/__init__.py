"""Particle-drift workload: a second domain application for the LB framework.

The paper's introduction motivates load balancing with particle methods
(molecular dynamics, short-range interaction codes); its evaluation uses the
fluid-with-erosion application instead.  This package provides a small
particle-in-cell style workload so the library's load-balancing machinery is
exercised by a second, structurally different application:

* particles move inside a 2-D box with individual velocities;
* an optional attractor pulls them towards a region of the domain, so the
  columns near the attractor accumulate particles -- and hence workload --
  iteration after iteration (persistent, localised imbalance growth, the
  regime ULBA targets);
* the compute cost of a column is proportional to the number of particles in
  it (plus a near-neighbour interaction term), so the per-column loads feed
  the same stripe decomposition used by the erosion application.

:class:`ParticleApplication` implements the
:class:`repro.runtime.skeleton.StripedApplication` protocol and can be run
by :class:`repro.runtime.skeleton.IterativeRunner` under any workload/trigger
policy, exactly like the erosion application.
"""

from repro.particles.app import ParticleApplication, ParticleConfig
from repro.particles.system import ParticleSystem

__all__ = ["ParticleApplication", "ParticleConfig", "ParticleSystem"]
