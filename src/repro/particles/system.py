"""Minimal 2-D particle system with drift, thermal noise and an attractor.

The system is deliberately simple -- it is a workload generator for the
load-balancing framework, not a physics engine -- but it keeps the features
that matter for load balancing:

* particle positions evolve continuously, so per-column occupancy (and hence
  workload) changes gradually from one iteration to the next (principle of
  persistence);
* an optional attractor produces *sustained, localised* concentration, which
  is the imbalance pattern ULBA anticipates;
* reflective boundaries keep every particle inside the domain so workload is
  conserved.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_non_negative, check_positive_int

__all__ = ["ParticleSystem"]


class ParticleSystem:
    """A set of point particles in the box ``[0, width) x [0, height)``.

    Parameters
    ----------
    num_particles:
        Number of particles.
    width, height:
        Box dimensions, in cell units (column index = ``floor(x)``).
    drift_velocity:
        Constant velocity added to every particle, in cells per iteration
        (models a mean flow).
    thermal_speed:
        Standard deviation of the random per-iteration displacement.
    attractor:
        Optional ``(x, y)`` position particles are pulled towards.
    attractor_strength:
        Fraction of the distance to the attractor covered per iteration
        (0 disables the pull even when an attractor position is given).
    seed:
        Randomness for the initial placement and the thermal motion.
    """

    def __init__(
        self,
        num_particles: int,
        *,
        width: int,
        height: int,
        drift_velocity: Tuple[float, float] = (0.0, 0.0),
        thermal_speed: float = 0.1,
        attractor: Optional[Tuple[float, float]] = None,
        attractor_strength: float = 0.0,
        seed: SeedLike = None,
    ) -> None:
        check_positive_int(num_particles, "num_particles")
        check_positive_int(width, "width")
        check_positive_int(height, "height")
        check_non_negative(thermal_speed, "thermal_speed")
        check_non_negative(attractor_strength, "attractor_strength")
        if attractor_strength > 1.0:
            raise ValueError(
                f"attractor_strength must be <= 1, got {attractor_strength}"
            )
        if attractor is not None:
            ax, ay = attractor
            if not (0.0 <= ax < width and 0.0 <= ay < height):
                raise ValueError(
                    f"attractor {attractor} lies outside the {width}x{height} box"
                )

        self.width = width
        self.height = height
        self.drift_velocity = (float(drift_velocity[0]), float(drift_velocity[1]))
        self.thermal_speed = float(thermal_speed)
        self.attractor = attractor
        self.attractor_strength = float(attractor_strength)
        self._rng = ensure_rng(seed)
        #: Particle positions, shape ``(num_particles, 2)``: columns (x), rows (y).
        self.positions = np.column_stack(
            [
                self._rng.uniform(0.0, width, num_particles),
                self._rng.uniform(0.0, height, num_particles),
            ]
        )
        self._step = 0

    # ------------------------------------------------------------------
    @property
    def num_particles(self) -> int:
        """Number of particles (constant)."""
        return self.positions.shape[0]

    @property
    def step_count(self) -> int:
        """Number of dynamics steps performed so far."""
        return self._step

    # ------------------------------------------------------------------
    def advance(self) -> None:
        """Move every particle by drift + thermal noise + attractor pull."""
        displacement = np.empty_like(self.positions)
        displacement[:, 0] = self.drift_velocity[0]
        displacement[:, 1] = self.drift_velocity[1]
        if self.thermal_speed > 0.0:
            displacement += self._rng.normal(
                0.0, self.thermal_speed, self.positions.shape
            )
        if self.attractor is not None and self.attractor_strength > 0.0:
            target = np.asarray(self.attractor, dtype=float)
            displacement += self.attractor_strength * (target - self.positions)
        self.positions += displacement
        self._reflect()
        self._step += 1

    def _reflect(self) -> None:
        """Reflect positions back into the box (conserves the particle count)."""
        for axis, extent in ((0, self.width), (1, self.height)):
            coords = self.positions[:, axis]
            # Fold the coordinate into [0, 2*extent) then mirror the upper half.
            coords = np.mod(coords, 2.0 * extent)
            over = coords >= extent
            coords[over] = 2.0 * extent - coords[over]
            # Guard against landing exactly on the upper boundary.
            np.clip(coords, 0.0, np.nextafter(float(extent), 0.0), out=coords)
            self.positions[:, axis] = coords

    # ------------------------------------------------------------------
    def column_indices(self) -> np.ndarray:
        """Column index of every particle."""
        return np.floor(self.positions[:, 0]).astype(np.int64)

    def column_counts(self) -> np.ndarray:
        """Number of particles per column (length ``width``)."""
        return np.bincount(self.column_indices(), minlength=self.width).astype(float)

    def concentration(self) -> float:
        """Max/mean ratio of the per-column occupancy (imbalance indicator)."""
        counts = self.column_counts()
        mean = counts.mean()
        if mean <= 0.0:
            return 0.0
        return float(counts.max() / mean)
