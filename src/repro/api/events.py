"""Streaming event bus of the session facade.

A :class:`~repro.api.session.Session` owns one :class:`EventBus` and emits
typed events while a run executes:

``"phase"``
    :class:`PhaseEvent` -- lifecycle transitions (``"run"`` when the
    iteration loop starts, ``"done"`` when it finishes).
``"iteration"``
    :class:`IterationEvent` -- one completed application iteration with its
    virtual elapsed time.
``"lb_step"``
    :class:`LBStepEvent` -- one executed load-balancing step, carrying the
    full :class:`~repro.lb.centralized.LBStepReport`.
``"batch_chunk"``
    :class:`BatchChunkEvent` -- one completed sub-batch of a
    memory-budgeted replica-batched run (see
    :class:`~repro.batch.runner.BatchRunner`).
``"campaign_cell"``
    :class:`CampaignCellEvent` -- one campaign cell freshly executed by
    :func:`~repro.campaign.runner.run_campaign`; the live
    ``repro campaign --progress`` line feeds on these.
``"campaign_fault"``
    :class:`CampaignFaultEvent` -- one supervision event of a fault-tolerant
    campaign (worker crash, task timeout, retry, batch split, quarantine);
    see :mod:`repro.resilience`.
``"worker_heartbeat"``
    :class:`WorkerHeartbeatEvent` -- one liveness beat from a supervised
    campaign worker, piggybacked on the telemetry channel.

Subscribers attach with :meth:`EventBus.on` and receive events synchronously
in subscription order; progress reporting, tracing and future async or
distributed backends observe the run through this bus instead of poking
runner internals.  Emission is allocation-free when an event type has no
subscribers (the session checks :meth:`EventBus.has_listeners` first), so
the facade adds no per-iteration cost to headless runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.lb.centralized import LBStepReport

__all__ = [
    "EVENT_TYPES",
    "EV_BATCH_CHUNK",
    "EV_CAMPAIGN_CELL",
    "EV_CAMPAIGN_FAULT",
    "EV_ITERATION",
    "EV_LB_STEP",
    "EV_PHASE",
    "EV_WORKER_HEARTBEAT",
    "BatchChunkEvent",
    "CampaignCellEvent",
    "CampaignFaultEvent",
    "EventBus",
    "IterationEvent",
    "LBStepEvent",
    "PhaseEvent",
    "WorkerHeartbeatEvent",
]

# Event-name constants.  Emit call sites must reference these rather than
# string literals (enforced by lint rule API001), so every emitted name is
# statically checkable against the catalog below.
EV_PHASE = "phase"
EV_ITERATION = "iteration"
EV_LB_STEP = "lb_step"
EV_BATCH_CHUNK = "batch_chunk"
EV_CAMPAIGN_CELL = "campaign_cell"
EV_CAMPAIGN_FAULT = "campaign_fault"
EV_WORKER_HEARTBEAT = "worker_heartbeat"

#: Event names a session emits (plus the ``"*"`` wildcard accepted by ``on``).
EVENT_TYPES: Tuple[str, ...] = (
    EV_PHASE,
    EV_ITERATION,
    EV_LB_STEP,
    EV_BATCH_CHUNK,
    EV_CAMPAIGN_CELL,
    EV_CAMPAIGN_FAULT,
    EV_WORKER_HEARTBEAT,
)


@dataclass(frozen=True)
class PhaseEvent:
    """A session lifecycle transition (``"run"`` / ``"done"``)."""

    #: Name of the phase that just started.
    name: str


@dataclass(frozen=True)
class IterationEvent:
    """One completed application iteration."""

    #: 0-based iteration index.
    iteration: int
    #: Virtual elapsed time of the iteration's compute step (seconds).
    elapsed: float


@dataclass(frozen=True)
class LBStepEvent:
    """One executed load-balancing step."""

    #: Iteration at which the LB step ran.
    iteration: int
    #: Full report of the step (decision, partition, migrated load, cost).
    report: LBStepReport


@dataclass(frozen=True)
class BatchChunkEvent:
    """One completed sub-batch of a memory-budgeted batched run."""

    #: 0-based index of the chunk within the batch.
    chunk: int
    #: Total number of sequential chunks of the run.
    num_chunks: int
    #: Number of replicas this chunk executed.
    replicas: int
    #: Host wall-clock duration of the chunk (seconds).
    wall_time: float


@dataclass(frozen=True)
class CampaignCellEvent:
    """One campaign cell freshly executed (resumed cells emit nothing)."""

    #: Unique id of the cell within the campaign grid.
    cell_id: str
    #: Scenario name of the cell.
    scenario: str
    #: Policy label of the cell (e.g. ``"ulba(alpha=0.4)"``).
    policy: str
    #: Total virtual time of the cell's run (seconds).
    total_time: float
    #: Number of LB invocations of the cell's run.
    num_lb_calls: int
    #: Pid of the worker process that executed the cell.
    worker_pid: int
    #: 1-based completion rank of the cell within this invocation.
    index: int
    #: Cells this invocation set out to execute (pending, not resumed).
    total: int


@dataclass(frozen=True)
class CampaignFaultEvent:
    """One supervision event of a fault-tolerant campaign run.

    Emitted by :func:`~repro.campaign.runner.run_campaign` when its
    supervised pool observes a failure or reacts to one; ``kind`` is one of
    ``"crash"`` / ``"timeout"`` / ``"error"`` / ``"retry"`` / ``"split"`` /
    ``"restart"`` / ``"quarantine"``.
    """

    #: What happened (see class docstring for the vocabulary).
    kind: str
    #: Ids of the affected cells (empty for worker-only events).
    cell_ids: Tuple[str, ...]
    #: 0-based attempt index the fault happened on.
    attempt: int
    #: Pid of the affected worker (0 when unknown).
    worker_pid: int
    #: Backoff delay before the re-dispatch (0.0 when not retrying).
    retry_in: float
    #: Human-readable description of the fault.
    message: str


@dataclass(frozen=True)
class WorkerHeartbeatEvent:
    """One liveness beat from a supervised campaign worker."""

    #: Worker slot id within the pool.
    worker_id: int
    #: Pid of the worker process.
    pid: int
    #: Worker-side epoch timestamp of the beat (``time.time()``).
    timestamp: float
    #: True when the worker was executing a task at beat time.
    busy: bool


class _Subscription:
    """One live subscription: identity-distinct even for a repeated callback."""

    __slots__ = ("callback",)

    def __init__(self, callback: Callable[[object], None]) -> None:
        self.callback = callback


class EventBus:
    """Minimal synchronous publish/subscribe hub with typed event names.

    Only the names in :data:`EVENT_TYPES` are valid (typos raise
    :class:`ValueError` at subscription *and* emission time); ``"*"``
    subscribes one callback to every event type.  Callback exceptions
    propagate to the emitter -- the bus never swallows errors.
    """

    def __init__(self) -> None:
        self._subscribers: Dict[str, List[_Subscription]] = {
            event: [] for event in EVENT_TYPES
        }

    def _check(self, event: str) -> None:
        if event not in self._subscribers:
            raise ValueError(
                f"unknown event {event!r}; known events: {', '.join(EVENT_TYPES)} (or '*')"
            )

    def on(self, event: str, callback: Callable[[object], None]) -> Callable[[], None]:
        """Subscribe ``callback`` to ``event`` (or ``"*"`` for all events).

        Returns an idempotent unsubscribe function; calling it removes this
        subscription (and only this one) from the bus.
        """
        if event == "*":
            offs = [self.on(name, callback) for name in EVENT_TYPES]

            def _unsubscribe_all() -> None:
                for off in offs:
                    off()

            return _unsubscribe_all
        self._check(event)
        handlers = self._subscribers[event]
        # Subscriptions are removed by identity, so unsubscribing one of two
        # subscriptions of the *same* callback never drops the other.
        subscription = _Subscription(callback)
        handlers.append(subscription)

        def _unsubscribe() -> None:
            try:
                handlers.remove(subscription)
            except ValueError:
                pass

        return _unsubscribe

    def has_listeners(self, event: str) -> bool:
        """True when at least one callback is subscribed to ``event``."""
        self._check(event)
        return bool(self._subscribers[event])

    def emit(self, event: str, payload: object) -> None:
        """Deliver ``payload`` to every subscriber of ``event``, in order.

        The subscriber list is snapshotted first, so a callback may
        unsubscribe (itself or others) without perturbing the delivery.
        """
        self._check(event)
        for subscription in tuple(self._subscribers[event]):
            subscription.callback(payload)
