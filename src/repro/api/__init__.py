"""Unified declarative run API: config tree, session facade, event bus.

This package is the single front door to the simulation stack.  The paper's
core claim -- the standard method and ULBA share one centralized LB
technique and differ only in injected policies -- is mirrored in the API:
one serializable :class:`~repro.api.config.RunConfig` names the workload
(scenario catalog), the policy pair (:mod:`repro.lb.registry`) and the
machine; one :class:`~repro.api.session.Session` owns every component the
run needs; one :class:`~repro.api.events.EventBus` streams progress.

Layering (consumers above, substrate below)::

    cli  |  campaign  |  experiments (fig4/fig5, ablations)  |  user code
    -----------------------------------------------------------------
                repro.api:  RunConfig -> Session -> SessionResult
                            EventBus: phase / iteration / lb_step /
                                      batch_chunk / campaign_cell
                            repro.obs: metrics / profiler / tracing
    -----------------------------------------------------------------
    scenarios (catalog)   lb.registry (policies)   runtime (Algorithm 1)
    erosion / particles / generators               simcluster / partitioning

Quickstart::

    from repro.api import PolicyConfig, RunConfig, ScenarioConfig, Session

    cfg = RunConfig(
        scenario=ScenarioConfig(name="erosion", iterations=80, seed=7),
        policy=PolicyConfig("ulba", {"alpha": 0.4}),
    )
    cfg = RunConfig.from_json(cfg.to_json())      # fully serializable
    session = Session.from_config(cfg)
    session.on("lb_step", lambda e: print("LB at", e.iteration))
    result = session.run()
    print(result.total_time, result.num_lb_calls)
"""

from repro.api.config import (
    DEFAULT_BANDWIDTH,
    DEFAULT_BYTES_PER_LOAD_UNIT,
    DEFAULT_LATENCY,
    ClusterConfig,
    ObsConfig,
    PolicyConfig,
    RunConfig,
    RunnerConfig,
    ScenarioConfig,
    TopologyConfig,
)
from repro.api.events import (
    EVENT_TYPES,
    BatchChunkEvent,
    CampaignCellEvent,
    CampaignFaultEvent,
    EventBus,
    IterationEvent,
    LBStepEvent,
    PhaseEvent,
    WorkerHeartbeatEvent,
)
from repro.api.session import Session, SessionResult
from repro.resilience.errors import SessionStateError

__all__ = [
    "BatchChunkEvent",
    "CampaignCellEvent",
    "CampaignFaultEvent",
    "ClusterConfig",
    "DEFAULT_BANDWIDTH",
    "DEFAULT_BYTES_PER_LOAD_UNIT",
    "DEFAULT_LATENCY",
    "EVENT_TYPES",
    "EventBus",
    "IterationEvent",
    "LBStepEvent",
    "ObsConfig",
    "PhaseEvent",
    "PolicyConfig",
    "RunConfig",
    "RunnerConfig",
    "ScenarioConfig",
    "Session",
    "SessionResult",
    "SessionStateError",
    "TopologyConfig",
    "WorkerHeartbeatEvent",
]
