"""The Session facade: one entry point from a declarative config to a run.

Every pre-redesign caller wired cluster + partitioner + WIR database +
policies + runner by hand (the figure drivers, the erosion scenario harness,
the campaign runner and the CLI each had their own copy of that wiring).  A
:class:`Session` owns all of it:

>>> from repro.api import PolicyConfig, RunConfig, Session
>>> cfg = RunConfig(policy=PolicyConfig("ulba", {"alpha": 0.4}))
>>> session = Session.from_config(cfg)
>>> unsubscribe = session.on(
...     "lb_step", lambda e: print("LB at iteration", e.iteration)
... )
>>> result = session.run()                         # doctest: +SKIP

``from_config`` resolves the scenario through the catalog and the policy
pair through :mod:`repro.lb.registry`; the lower-level constructor accepts
already-built components (cluster, application, policy objects) for harnesses
like :class:`repro.scenarios.erosion.ErosionScenario` that sweep policy
*objects* rather than names.  Either way the session exposes a streaming
:class:`~repro.api.events.EventBus` (``on("phase" | "iteration" |
"lb_step")``) so progress reporting and tracing subscribe instead of poking
runner internals, and :meth:`run` returns a structured
:class:`SessionResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.batch.result import BatchResult

from repro.api.config import ObsConfig, RunConfig, RunnerConfig, TopologyConfig
from repro.api.events import (
    EV_BATCH_CHUNK,
    EV_ITERATION,
    EV_LB_STEP,
    EV_PHASE,
    BatchChunkEvent,
    EventBus,
    IterationEvent,
    LBStepEvent,
    PhaseEvent,
)
from repro.lb.base import TriggerPolicy, WorkloadPolicy
from repro.lb.centralized import LBStepReport
from repro.obs.clock import wall_clock, wall_clock_ns
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import StageProfile, StageProfiler
from repro.obs.trace import TraceWriter
from repro.resilience.errors import SessionStateError
from repro.runtime.skeleton import IterativeRunner, RunResult, StripedApplication
from repro.simcluster.cluster import VirtualCluster
from repro.simcluster.comm import CommCostModel
from repro.utils.rng import SeedLike
from repro.utils.validation import check_positive_int

__all__ = ["Session", "SessionResult"]

#: Fixed bucket edges of the per-iteration virtual-duration histogram
#: (seconds, decade-spaced); fixed so worker snapshots merge by addition.
_ITERATION_ELAPSED_EDGES = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0)


@dataclass(frozen=True)
class SessionResult:
    """Structured outcome of one :meth:`Session.run`."""

    #: The underlying runner result (trace, LB reports, policy names).
    run: RunResult
    #: Catalog name of the scenario ("" for component-built sessions).
    scenario: str
    #: Number of application iterations executed by this call.
    iterations: int
    #: Host wall-clock time of the run (bookkeeping; everything else is
    #: deterministic virtual time).
    wall_time: float
    #: The config the session was built from (None for component-built ones).
    config: Optional[RunConfig] = None

    # ------------------------------------------------------------------
    @property
    def profile(self) -> "Optional[StageProfile]":
        """Stage profile of the run (None unless ``obs.profile`` was on)."""
        return self.run.profile

    @property
    def total_time(self) -> float:
        """Total virtual time of the run (seconds)."""
        return self.run.total_time

    @property
    def num_lb_calls(self) -> int:
        """Number of LB invocations."""
        return self.run.num_lb_calls

    @property
    def mean_utilization(self) -> float:
        """Time-weighted average PE utilization."""
        return self.run.mean_utilization

    def summary(self) -> dict:
        """Flat summary row: trace totals plus session bookkeeping."""
        info = self.run.summary()
        info.update(
            scenario=self.scenario,
            iterations=self.iterations,
            wall_time=self.wall_time,
        )
        return info


class Session:
    """Facade owning cluster, WIR database, partitioner, policies and runner.

    Two construction paths:

    * :meth:`from_config` -- fully declarative: a :class:`RunConfig` names
      the scenario (catalog lookup) and the policy pair (registry lookup)
      and the session builds every component;
    * the constructor -- component-level: the caller passes an
      already-built cluster, application and policy objects, and the
      session still owns runner wiring, the LB-cost prior
      (:meth:`RunnerConfig.resolve_lb_cost_prior`) and the event bus.

    Subscribe to progress with :meth:`on` before calling :meth:`run`.
    Repeated ``run`` calls continue on the same virtual cluster (clocks and
    trace carry over), exactly like calling ``IterativeRunner.run`` again.
    """

    def __init__(
        self,
        cluster: VirtualCluster,
        application: StripedApplication,
        workload_policy: Optional[WorkloadPolicy] = None,
        trigger_policy: Optional[TriggerPolicy] = None,
        *,
        runner_config: Optional[RunnerConfig] = None,
        topology: Optional[TopologyConfig] = None,
        seed: SeedLike = None,
        iterations: Optional[int] = None,
        config: Optional[RunConfig] = None,
        scenario_name: str = "",
        scenario_instance: Optional[object] = None,
    ) -> None:
        self.events = EventBus()
        self.config = config
        self.scenario_name = scenario_name
        #: The :class:`~repro.scenarios.base.ScenarioInstance` the session
        #: was built from (None for component-built sessions).
        self.scenario_instance = scenario_instance
        self.runner_config = runner_config if runner_config is not None else RunnerConfig()
        self.topology = topology if topology is not None else TopologyConfig()
        self._default_iterations = iterations
        #: Observability settings (all off for component-built sessions).
        self.obs = config.obs if config is not None else ObsConfig()
        #: Chrome-trace writer of the session (None unless ``obs.trace``).
        self.trace_writer: Optional[TraceWriter] = (
            TraceWriter(max_events=self.obs.trace_max_events)
            if self.obs.trace
            else None
        )
        #: Metrics registry of the session (None unless ``obs.metrics``).
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if self.obs.metrics else None
        )
        #: Hot-loop stage profiler; built for ``obs.profile`` and also for
        #: ``obs.trace`` (the trace's stage spans come from its probes).
        self.profiler: Optional[StageProfiler] = (
            StageProfiler(trace=self.trace_writer)
            if (self.obs.profile or self.obs.trace)
            else None
        )
        if self.trace_writer is not None:
            self.trace_writer.set_process_name(
                f"repro:{scenario_name}" if scenario_name else "repro:session"
            )
            self.trace_writer.set_thread_name("hot-loop")
            self._subscribe_trace(self.trace_writer)
        prior = self.runner_config.resolve_lb_cost_prior(
            self._total_flop(application), cluster.size, cluster.pe_speed
        )
        #: The underlying Algorithm 1 driver (exposed for advanced use).
        self.runner = IterativeRunner(
            cluster,
            application,
            workload_policy=workload_policy,
            trigger_policy=trigger_policy,
            use_gossip=self.topology.use_gossip,
            gossip_config=self.topology.gossip_config(),
            wir_smoothing=self.topology.wir_smoothing,
            initial_lb_cost_estimate=prior,
            partition_flop_per_column=self.runner_config.partition_flop_per_column,
            bytes_per_load_unit=self.runner_config.bytes_per_load_unit,
            seed=seed,
            on_iteration=self._emit_iteration,
            on_lb_step=self._emit_lb_step,
            profiler=self.profiler,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _total_flop(application: StripedApplication) -> float:
        # Prefer the application's own total_load() accumulator: the erosion
        # experiments and the golden fixtures have always computed the prior
        # from it, and its summation order differs from column_loads().sum()
        # by up to an ulp.
        total_load = getattr(application, "total_load", None)
        if callable(total_load):
            total = float(total_load())
        else:
            total = float(application.column_loads().sum())
        return total * application.flop_per_load_unit

    @classmethod
    def from_config(cls, config: RunConfig) -> "Session":
        """Build a fully wired session from a declarative :class:`RunConfig`.

        Resolves the scenario name against the catalog (raising
        :class:`KeyError` with the registered names on a typo), builds the
        workload instance for ``config.scenario.seed``, the virtual cluster
        for ``config.cluster`` and the policy pair via the LB registry.
        """
        # Imported here, not at module level: the scenario layer consumes
        # repro.api.config (RunnerConfig owns the LB-cost prior), so the
        # import must point downward only at runtime.  Importing the package
        # also registers the built-in catalog.
        import repro.scenarios  # noqa: F401  -- populates the scenario registry
        from repro.scenarios.base import ScenarioSpec
        from repro.scenarios.registry import get_scenario

        scenario = get_scenario(config.scenario.name)
        spec = ScenarioSpec(
            num_pes=config.cluster.num_pes,
            columns_per_pe=config.scenario.columns_per_pe,
            rows=config.scenario.rows,
            iterations=config.scenario.iterations,
            seed=config.scenario.seed,
        )
        instance = scenario.build(spec)
        cluster = VirtualCluster(
            config.cluster.num_pes,
            pe_speed=config.cluster.pe_speed,
            cost_model=CommCostModel(
                latency=config.cluster.latency, bandwidth=config.cluster.bandwidth
            ),
        )
        workload_policy, trigger_policy = config.policy.resolve()
        return cls(
            cluster,
            instance.application,
            workload_policy,
            trigger_policy,
            runner_config=config.runner,
            topology=config.topology,
            seed=config.scenario.seed,
            iterations=config.scenario.iterations,
            config=config,
            scenario_name=config.scenario.name,
            scenario_instance=instance,
        )

    # ------------------------------------------------------------------
    @property
    def cluster(self) -> VirtualCluster:
        """The virtual cluster the session runs on."""
        return self.runner.cluster

    @property
    def application(self) -> StripedApplication:
        """The striped application of the session."""
        return self.runner.application

    def on(self, event: str, callback: Callable[[object], None]) -> Callable[[], None]:
        """Subscribe to ``"phase"`` / ``"iteration"`` / ``"lb_step"`` events.

        Shorthand for ``session.events.on(...)``; returns the unsubscribe
        function.
        """
        return self.events.on(event, callback)

    def _emit_iteration(self, iteration: int, elapsed: float) -> None:
        if self.events.has_listeners(EV_ITERATION):
            self.events.emit(EV_ITERATION, IterationEvent(iteration=iteration, elapsed=elapsed))

    def _emit_lb_step(self, iteration: int, report: LBStepReport) -> None:
        if self.events.has_listeners(EV_LB_STEP):
            self.events.emit(EV_LB_STEP, LBStepEvent(iteration=iteration, report=report))

    # ------------------------------------------------------------------
    def _subscribe_trace(self, writer: TraceWriter) -> None:
        """Mirror bus events into the Chrome trace as instant marks."""

        def _on_phase(event: object) -> None:
            assert isinstance(event, PhaseEvent)
            writer.instant(
                f"phase:{event.name}", wall_clock_ns(), cat="phase"
            )

        def _on_lb_step(event: object) -> None:
            assert isinstance(event, LBStepEvent)
            writer.instant(
                "lb_step",
                wall_clock_ns(),
                cat="lb",
                args={"iteration": event.iteration},
            )

        self.events.on(EV_PHASE, _on_phase)
        self.events.on(EV_LB_STEP, _on_lb_step)

    def _record_run_metrics(self, result: RunResult, iterations: int) -> None:
        """Fold one solo run's outcome into the metrics registry."""
        registry = self.metrics
        if registry is None:
            return
        registry.inc("run/iterations", iterations)
        registry.inc("run/lb_calls", result.num_lb_calls)
        registry.set_gauge("run/total_time_s", result.total_time)
        registry.set_gauge("run/mean_utilization", result.mean_utilization)
        registry.register_histogram(
            "run/iteration_elapsed_s", _ITERATION_ELAPSED_EDGES
        )
        registry.observe(
            "run/iteration_elapsed_s", result.trace.iteration_time_series()
        )

    def _record_batch_metrics(self, result: "BatchResult", iterations: int) -> None:
        """Fold a batched run's outcome into the metrics registry."""
        registry = self.metrics
        if registry is None:
            return
        registry.inc("batch/replicas", result.num_replicas)
        registry.register_histogram(
            "run/iteration_elapsed_s", _ITERATION_ELAPSED_EDGES
        )
        for replica in result.replicas:
            registry.inc("run/iterations", iterations)
            registry.inc("run/lb_calls", replica.num_lb_calls)
            registry.observe(
                "run/iteration_elapsed_s", replica.trace.iteration_time_series()
            )

    # ------------------------------------------------------------------
    def run_batch(
        self,
        seeds: Optional[Sequence[int]] = None,
        iterations: Optional[int] = None,
    ) -> "BatchResult":
        """Run ``R`` seeded replicas of this config in one vectorized pass.

        Builds the replica-batched engine (:class:`repro.batch.BatchRunner`)
        from the session's declarative config: one scenario instance and one
        policy pair per seed, all executing on shared ``(R, P)`` state.
        Replica ``r`` of the result is bit-identical to
        ``Session.from_config(cfg with scenario.seed = seeds[r]).run()``.

        Parameters
        ----------
        seeds:
            Workload/gossip seed of every replica.  Defaults to
            ``scenario.seed + i`` for ``i in range(runner.replicas)``.
        iterations:
            Application iterations; defaults to ``scenario.iterations``.

        Example
        -------
        >>> from repro.api import RunConfig, Session
        >>> batch = Session.from_config(RunConfig()).run_batch(seeds=[0, 1, 2])
        ...                                                    # doctest: +SKIP
        >>> batch.aggregate()["replicas"]                      # doctest: +SKIP
        3
        """
        # Imported lazily for the same layering reason as from_config: the
        # batch engine consumes the scenario layer, which consumes this
        # package.
        import repro.scenarios  # noqa: F401  -- populates the scenario registry
        from repro.batch import BatchRunner
        from repro.scenarios.base import ScenarioSpec
        from repro.scenarios.registry import get_scenario

        if self.config is None:
            raise SessionStateError(
                "run_batch requires a declarative session: build it with "
                "Session.from_config(RunConfig(...))"
            )
        config = self.config
        if seeds is None:
            base = config.scenario.seed if config.scenario.seed is not None else 0
            seeds = [base + i for i in range(config.runner.replicas)]
        seeds = list(seeds)
        if not seeds:
            raise ValueError("seeds must name at least one replica")
        n = iterations if iterations is not None else config.scenario.iterations
        check_positive_int(n, "iterations")

        scenario = get_scenario(config.scenario.name)
        spec = ScenarioSpec(
            num_pes=config.cluster.num_pes,
            columns_per_pe=config.scenario.columns_per_pe,
            rows=config.scenario.rows,
            iterations=config.scenario.iterations,
            seed=config.scenario.seed,
        )
        instances = [scenario.build(spec.with_seed(seed)) for seed in seeds]
        applications = [instance.application for instance in instances]
        pairs = [config.policy.resolve() for _ in seeds]
        priors = [
            config.runner.resolve_lb_cost_prior(
                self._total_flop(app),
                config.cluster.num_pes,
                config.cluster.pe_speed,
            )
            for app in applications
        ]
        runner = BatchRunner(
            config.cluster.num_pes,
            applications,
            seeds=seeds,
            pe_speed=config.cluster.pe_speed,
            cost_model=CommCostModel(
                latency=config.cluster.latency,
                bandwidth=config.cluster.bandwidth,
            ),
            workload_policies=[pair[0] for pair in pairs],
            trigger_policies=[pair[1] for pair in pairs],
            use_gossip=self.topology.use_gossip,
            gossip_config=self.topology.gossip_config(),
            wir_smoothing=self.topology.wir_smoothing,
            initial_lb_cost_estimates=priors,
            partition_flop_per_column=config.runner.partition_flop_per_column,
            bytes_per_load_unit=config.runner.bytes_per_load_unit,
            memory_budget_bytes=(
                config.runner.memory_budget_mb * 2**20
                if config.runner.memory_budget_mb is not None
                else None
            ),
            profiler=self.profiler,
            on_chunk=(
                self._on_batch_chunk if self._wants_chunk_telemetry() else None
            ),
        )
        #: Kept for callers that need the per-replica scenario instances
        #: (e.g. the campaign rows' analytical model fields).
        self.batch_instances = instances
        self.events.emit(EV_PHASE, PhaseEvent("run_batch"))
        result = runner.run(n)
        self.events.emit(EV_PHASE, PhaseEvent("done"))
        self._record_batch_metrics(result, n)
        return result

    def _wants_chunk_telemetry(self) -> bool:
        """Only attach the chunk callback when someone will consume it."""
        return (
            self.trace_writer is not None
            or self.metrics is not None
            or self.events.has_listeners(EV_BATCH_CHUNK)
        )

    def _on_batch_chunk(
        self, chunk: int, num_chunks: int, replicas: int, wall_time: float
    ) -> None:
        """Turn one completed sub-batch into trace/metrics/bus telemetry."""
        if self.trace_writer is not None:
            dur_ns = int(wall_time * 1e9)
            self.trace_writer.complete(
                f"batch_chunk[{chunk}]",
                wall_clock_ns() - dur_ns,
                dur_ns,
                cat="chunk",
                args={
                    "chunk": chunk,
                    "num_chunks": num_chunks,
                    "replicas": replicas,
                },
            )
        if self.metrics is not None:
            self.metrics.inc("batch/chunks")
            self.metrics.inc("batch/chunk_wall_s", wall_time)
        if self.events.has_listeners(EV_BATCH_CHUNK):
            self.events.emit(
                EV_BATCH_CHUNK,
                BatchChunkEvent(
                    chunk=chunk,
                    num_chunks=num_chunks,
                    replicas=replicas,
                    wall_time=wall_time,
                ),
            )

    # ------------------------------------------------------------------
    def run(self, iterations: Optional[int] = None) -> SessionResult:
        """Execute the run and return its structured result.

        ``iterations`` defaults to the config's ``scenario.iterations``;
        component-built sessions without a default must pass it explicitly.

        Example
        -------
        >>> from repro.api import RunConfig, ScenarioConfig, Session
        >>> cfg = RunConfig(scenario=ScenarioConfig(iterations=20))
        >>> result = Session.from_config(cfg).run()
        >>> result.iterations
        20
        >>> result.total_time > 0
        True
        """
        n = iterations if iterations is not None else self._default_iterations
        if n is None:
            raise SessionStateError(
                "iterations not set: pass Session.run(iterations=...) or build "
                "the session from a RunConfig (whose scenario section sets it)"
            )
        check_positive_int(n, "iterations")
        started = wall_clock()
        self.events.emit(EV_PHASE, PhaseEvent("run"))
        result = self.runner.run(n)
        wall_time = wall_clock() - started
        self.events.emit(EV_PHASE, PhaseEvent("done"))
        self._record_run_metrics(result, n)
        return SessionResult(
            run=result,
            scenario=self.scenario_name,
            iterations=n,
            wall_time=wall_time,
            config=self.config,
        )
