"""The frozen, fully serializable configuration tree of the run API.

A :class:`RunConfig` is a complete declarative description of one simulated
run -- cluster + interconnect (:class:`ClusterConfig`), WIR dissemination
(:class:`TopologyConfig`), LB policy pair (:class:`PolicyConfig`, resolved
through :mod:`repro.lb.registry`), workload (:class:`ScenarioConfig`,
resolved through the scenario catalog) and runner knobs
(:class:`RunnerConfig`).  Every node is a frozen dataclass that validates at
construction, and the whole tree round-trips through plain dicts and JSON::

    cfg = RunConfig(policy=PolicyConfig("ulba", {"alpha": 0.4}))
    cfg == RunConfig.from_json(cfg.to_json())   # True

``from_dict`` / ``from_json`` reject unknown keys at every level, so a typo
in a shipped config fails loudly instead of silently running the defaults.
:class:`repro.api.session.Session` turns a :class:`RunConfig` into a wired,
runnable session.

This module also owns the canonical interconnect defaults of the erosion
experiments (``DEFAULT_LATENCY`` / ``DEFAULT_BANDWIDTH`` /
``DEFAULT_BYTES_PER_LOAD_UNIT``, historically defined in
:mod:`repro.scenarios.erosion`, which still re-exports them) and, through
:meth:`RunnerConfig.resolve_lb_cost_prior`, the LB-cost prior every layer
used to compute independently.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from types import MappingProxyType
from typing import Any, Dict, Mapping, Optional, Tuple, Type, TypeVar

from repro.lb.base import TriggerPolicy, WorkloadPolicy
from repro.lb.registry import make_policy_pair
from repro.runtime.skeleton import initial_lb_cost_prior
from repro.simcluster.gossip import GossipConfig
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_non_negative_int,
    check_positive,
    check_positive_int,
)

__all__ = [
    "DEFAULT_BANDWIDTH",
    "DEFAULT_BYTES_PER_LOAD_UNIT",
    "DEFAULT_LATENCY",
    "ClusterConfig",
    "ObsConfig",
    "PolicyConfig",
    "RunConfig",
    "RunnerConfig",
    "ScenarioConfig",
    "TopologyConfig",
    "parse_policy_shorthand",
]

#: Default interconnect latency of the erosion experiments (seconds).
DEFAULT_LATENCY: float = 5.0e-6
#: Default interconnect bandwidth of the erosion experiments (bytes/second).
DEFAULT_BANDWIDTH: float = 2.0e9
#: Default migration volume charged per unit of cell workload in the erosion
#: experiments (bytes).
DEFAULT_BYTES_PER_LOAD_UNIT: float = 1200.0


_S = TypeVar("_S", bound="_ConfigSection")


def _from_mapping(cls: Type[_S], data: Mapping[str, Any], *, context: str) -> _S:
    """Build ``cls(**data)`` after rejecting non-mappings and unknown keys."""
    if not isinstance(data, Mapping):
        raise TypeError(f"{context} must be built from a mapping, got {type(data).__name__}")
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(
            f"unknown key(s) {unknown} for {context}; known keys: {sorted(known)}"
        )
    return cls(**data)


def parse_policy_shorthand(text: str) -> Tuple[str, Dict[str, Any]]:
    """Split the CLI policy shorthand ``"name[:alpha]"`` into name + params.

    The single implementation behind :meth:`PolicyConfig.parse` and the
    campaign grid's ``PolicySpec.parse``, so the two surfaces cannot drift.
    A value after the colon becomes the ``alpha`` parameter.
    """
    name, _, alpha_text = text.strip().partition(":")
    params: Dict[str, Any] = {"alpha": float(alpha_text)} if alpha_text else {}
    return name, params


def _check_jsonable(label: str, value: object) -> None:
    try:
        json.dumps(value)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{label} must be JSON-serializable: {exc}") from exc


@dataclass(frozen=True)
class _ConfigSection:
    """Shared dict/JSON plumbing of every config dataclass."""

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form of this config (JSON-ready, nested for trees)."""
        return asdict(self)

    @classmethod
    def from_dict(cls: Type[_S], data: Mapping[str, Any]) -> _S:
        """Rebuild from a plain mapping, rejecting unknown keys."""
        return _from_mapping(cls, data, context=cls.__name__)


@dataclass(frozen=True)
class ClusterConfig(_ConfigSection):
    """The virtual cluster and its interconnect model.

    Maps one-to-one onto :class:`repro.simcluster.cluster.VirtualCluster`
    plus :class:`repro.simcluster.comm.CommCostModel`.
    """

    #: Number of PEs (one stripe each).
    num_pes: int = 16
    #: PE speed in FLOP/s.
    pe_speed: float = 1.0e9
    #: Interconnect latency in seconds.
    latency: float = DEFAULT_LATENCY
    #: Interconnect bandwidth in bytes per second.
    bandwidth: float = DEFAULT_BANDWIDTH

    def __post_init__(self) -> None:
        check_positive_int(self.num_pes, "num_pes")
        check_positive(self.pe_speed, "pe_speed")
        check_non_negative(self.latency, "latency")
        check_positive(self.bandwidth, "bandwidth")


@dataclass(frozen=True)
class TopologyConfig(_ConfigSection):
    """How WIR values propagate between PEs.

    ``gossip_mode`` selects the board implementation of the gossip
    substrate: ``"dense"`` is the historical full ``(P, P)`` replicated
    database (quadratic memory -- fine up to a few hundred PEs), and
    ``"sparse"`` is the memory-bounded board for the large-P regime
    (``O(P * view_size)``; see
    :class:`repro.simcluster.gossip.SparseGossipBoard`).  The remaining
    knobs map one-to-one onto
    :class:`repro.simcluster.gossip.GossipConfig` and are validated by it
    at construction.
    """

    #: Gossip dissemination (one push round per iteration, stale views as in
    #: the paper) when true; instant allgather-like dissemination when false.
    use_gossip: bool = True
    #: Smoothing factor of the per-PE WIR estimators, in (0, 1].
    wir_smoothing: float = 0.5
    #: Gossip board implementation: ``"dense"`` (full ``(P, P)`` views) or
    #: ``"sparse"`` (memory-bounded per-rank views).
    gossip_mode: str = "dense"
    #: Peers each rank pushes its view to per dissemination round.
    fanout: int = 2
    #: Push topology: ``"random"``, ``"ring"`` or ``"hypercube"``.
    push_topology: str = "random"
    #: Sparse mode only: maximum entries one rank's view retains (``None`` =
    #: unbounded).  The per-rank own entry is never evicted.
    view_size: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.use_gossip, bool):
            raise TypeError(f"use_gossip must be a bool, got {type(self.use_gossip).__name__}")
        check_fraction(self.wir_smoothing, "wir_smoothing")
        if self.wir_smoothing == 0.0:
            raise ValueError("wir_smoothing must be > 0 (0 would never update)")
        # Eager validation of the gossip knobs (mode / topology / fanout /
        # view_size) through the config they resolve to.
        self.gossip_config()

    # ------------------------------------------------------------------
    def gossip_config(self) -> "GossipConfig":
        """The :class:`repro.simcluster.gossip.GossipConfig` these knobs select."""
        return GossipConfig(
            fanout=self.fanout,
            mode=self.gossip_mode,
            topology=self.push_topology,
            view_size=self.view_size,
        )


@dataclass(frozen=True)
class PolicyConfig(_ConfigSection):
    """One LB policy pair by registry name plus scalar parameters.

    ``name`` must be registered in :mod:`repro.lb.registry` (built-ins:
    ``"standard"``, ``"ulba"``, ``"ulba-dynamic"``); ``params`` is passed to
    the pair factory as keyword arguments.  Both the name and the parameters
    are validated eagerly at construction -- an unknown name or a bad
    ``alpha`` fails here, not at session build time -- so register custom
    pairs *before* constructing configs that reference them.
    """

    #: Registry name of the policy pair.
    name: str = "standard"
    #: Scalar keyword parameters of the pair factory (e.g. ``{"alpha": 0.4}``).
    #: Stored as a read-only mapping so the eagerly validated values cannot
    #: be mutated afterwards.
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name or self.name != self.name.lower():
            raise ValueError(
                f"policy name must be a non-empty lowercase string, got {self.name!r}"
            )
        if not isinstance(self.params, Mapping):
            raise TypeError(f"policy params must be a mapping, got {type(self.params).__name__}")
        # A private copy behind a read-only proxy: the config stays genuinely
        # frozen (mutation attempts raise) and the validation below cannot be
        # bypassed after construction.
        object.__setattr__(self, "params", MappingProxyType(dict(self.params)))
        _check_jsonable("policy params", dict(self.params))
        # Eager validation: building the pair once surfaces unknown names
        # (KeyError) and invalid parameters (ValueError) at construction.
        self.resolve()

    def __hash__(self) -> int:
        # The generated frozen-dataclass hash would choke on the mapping
        # field; params is validated JSON-serializable, so its canonical
        # JSON form is a stable stand-in (keeps RunConfig hashable too).
        return hash((self.name, json.dumps(dict(self.params), sort_keys=True)))

    def __reduce__(self) -> Tuple[Any, Tuple[str, Dict[str, Any]]]:
        # The read-only params proxy is not picklable; rebuild through the
        # constructor instead (re-validating on the way in), which also
        # keeps RunConfig picklable/deep-copyable for worker fan-out.
        return (self.__class__, (self.name, dict(self.params)))

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (params materialized as a mutable copy)."""
        return {"name": self.name, "params": dict(self.params)}

    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        """Compact human-readable form, e.g. ``ulba(alpha=0.4)``."""
        if not self.params:
            return self.name
        inner = ", ".join(f"{key}={value}" for key, value in sorted(self.params.items()))
        return f"{self.name}({inner})"

    @classmethod
    def parse(cls, text: str) -> "PolicyConfig":
        """Parse the CLI shorthand ``"standard"`` / ``"ulba"`` / ``"ulba:0.3"``.

        A value after the colon becomes the ``alpha`` parameter (see
        :func:`parse_policy_shorthand`).
        """
        name, params = parse_policy_shorthand(text)
        return cls(name=name, params=params)

    def resolve(self) -> Tuple[WorkloadPolicy, TriggerPolicy]:
        """Fresh (workload policy, trigger policy) pair via the registry."""
        return make_policy_pair(self.name, **dict(self.params))


@dataclass(frozen=True)
class ScenarioConfig(_ConfigSection):
    """Which catalog workload to run and at what size.

    Together with ``ClusterConfig.num_pes`` this maps onto a
    :class:`repro.scenarios.base.ScenarioSpec`.  The name is resolved
    against the scenario registry when the session is built (not at
    construction, so configs may be deserialized before a user scenario is
    registered); unknown names then raise :class:`KeyError` listing the
    catalog.
    """

    #: Catalog name of the scenario.
    name: str = "synthetic-hotspot"
    #: Domain columns per PE.
    columns_per_pe: int = 48
    #: Domain rows (grid scenarios only; others ignore it).
    rows: int = 48
    #: Application iterations of the run.
    iterations: int = 40
    #: Seed of the workload instance *and* of the runner's gossip stream.
    seed: Optional[int] = 0

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name or self.name != self.name.lower():
            raise ValueError(
                f"scenario name must be a non-empty lowercase string, got {self.name!r}"
            )
        check_positive_int(self.columns_per_pe, "columns_per_pe")
        check_positive_int(self.rows, "rows")
        check_positive_int(self.iterations, "iterations")
        if self.seed is not None:
            check_non_negative_int(self.seed, "seed")


@dataclass(frozen=True)
class RunnerConfig(_ConfigSection):
    """Runner-level knobs, including the single source of the LB-cost prior.

    ``initial_lb_cost_prior`` used to be invoked independently by the
    erosion scenario harness, the scenario layer and the campaign runner;
    this config is now its single owner -- every consumer calls
    :meth:`resolve_lb_cost_prior` so they all assume the same prior.
    """

    #: Migration bytes charged per unit of migrated column load.  The
    #: default is the canonical erosion-experiment value, so a plain
    #: ``RunConfig()`` charges the same LB costs as the campaign engine and
    #: the figure drivers (the bare ``IterativeRunner`` keeps its own lower
    #: default of 800 for library use).
    bytes_per_load_unit: float = DEFAULT_BYTES_PER_LOAD_UNIT
    #: FLOP charged on the root PE per domain column when repartitioning.
    partition_flop_per_column: float = 50.0
    #: Explicit LB-cost prior in seconds, or ``None`` for the standard
    #: half-of-one-balanced-iteration prior.
    lb_cost_prior: Optional[float] = None
    #: Number of seeded replicas a batched run executes in one vectorized
    #: pass (:meth:`repro.api.session.Session.run_batch`); replica ``i``
    #: uses ``scenario.seed + i`` and is bit-identical to a solo run with
    #: that seed.  ``1`` keeps the plain single-run behaviour.
    replicas: int = 1
    #: Memory budget (MiB) for the resident gossip-board state of a batched
    #: run.  When the full replica batch would exceed it, the batch engine
    #: transparently splits the replicas into sequential sub-batches that
    #: each fit (bit-identical results; see
    #: :class:`repro.batch.runner.BatchRunner`).  ``None`` never chunks.
    memory_budget_mb: Optional[float] = None

    def __post_init__(self) -> None:
        check_non_negative(self.bytes_per_load_unit, "bytes_per_load_unit")
        check_non_negative(self.partition_flop_per_column, "partition_flop_per_column")
        if self.lb_cost_prior is not None:
            check_non_negative(self.lb_cost_prior, "lb_cost_prior")
        check_positive_int(self.replicas, "replicas")
        if self.memory_budget_mb is not None:
            check_positive(self.memory_budget_mb, "memory_budget_mb")

    # ------------------------------------------------------------------
    def resolve_lb_cost_prior(self, total_flop: float, num_pes: int, pe_speed: float) -> float:
        """The LB cost assumed before the first measured LB step (seconds).

        Returns the explicit ``lb_cost_prior`` when one is configured,
        otherwise the shared half-iteration prior
        (:func:`repro.runtime.skeleton.initial_lb_cost_prior`) computed from
        the initial total workload.
        """
        if self.lb_cost_prior is not None:
            return float(self.lb_cost_prior)
        return initial_lb_cost_prior(total_flop, num_pes, pe_speed)


@dataclass(frozen=True)
class ObsConfig(_ConfigSection):
    """Observability switches of a run (all off by default).

    The default -- everything disabled -- is the zero-cost contract of
    :mod:`repro.obs`: the execution layers skip the instrumentation
    entirely, golden seeded runs stay bit-identical and the hot loop pays
    nothing.  Each switch is independent:

    * ``profile`` attaches a :class:`~repro.obs.profiler.StageProfiler` to
      the runner's hot-loop stages (compute step, gossip round, stripe
      reduceat, WIR update, LB decide/apply) and exposes the resulting
      :class:`~repro.obs.profiler.StageProfile` on the run result;
    * ``metrics`` gives the session a
      :class:`~repro.obs.metrics.MetricsRegistry` and records run-level
      counters/gauges/histograms into it;
    * ``trace`` records Chrome trace events (stage spans when ``profile``
      is also on, plus phase/LB-step/batch-chunk events) into a
      :class:`~repro.obs.trace.TraceWriter` exposed by the session.
    """

    #: Attach the hot-loop stage profiler.
    profile: bool = False
    #: Record run-level metrics into a session-owned registry.
    metrics: bool = False
    #: Record Chrome trace events into a session-owned trace writer.
    trace: bool = False
    #: Safety cap on retained trace events (see :class:`~repro.obs.trace.TraceWriter`).
    trace_max_events: int = 200_000

    def __post_init__(self) -> None:
        for name in ("profile", "metrics", "trace"):
            value = getattr(self, name)
            if not isinstance(value, bool):
                raise TypeError(f"{name} must be a bool, got {type(value).__name__}")
        check_positive_int(self.trace_max_events, "trace_max_events")

    # ------------------------------------------------------------------
    @property
    def any_enabled(self) -> bool:
        """True when at least one instrument is switched on."""
        return self.profile or self.metrics or self.trace


#: Section name -> config class of the RunConfig tree.
_RUN_SECTIONS: Dict[str, type] = {
    "cluster": ClusterConfig,
    "topology": TopologyConfig,
    "policy": PolicyConfig,
    "scenario": ScenarioConfig,
    "runner": RunnerConfig,
    "obs": ObsConfig,
}


@dataclass(frozen=True)
class RunConfig(_ConfigSection):
    """Complete declarative description of one simulated run.

    The tree is frozen and JSON round-trippable
    (``RunConfig.from_json(cfg.to_json()) == cfg``); hand it to
    :meth:`repro.api.session.Session.from_config` to execute it.

    Example
    -------
    >>> from repro.api import PolicyConfig, RunConfig, ScenarioConfig
    >>> cfg = RunConfig(
    ...     scenario=ScenarioConfig(name="erosion", iterations=80, seed=7),
    ...     policy=PolicyConfig("ulba", {"alpha": 0.4}),
    ... )
    >>> RunConfig.from_json(cfg.to_json()) == cfg
    True
    >>> cfg.policy.label
    'ulba(alpha=0.4)'
    """

    #: Virtual cluster and interconnect.
    cluster: ClusterConfig = ClusterConfig()
    #: WIR dissemination.
    topology: TopologyConfig = TopologyConfig()
    #: LB policy pair.
    policy: PolicyConfig = PolicyConfig()
    #: Workload scenario and sizing.
    scenario: ScenarioConfig = ScenarioConfig()
    #: Runner knobs (migration volume, LB-cost prior).
    runner: RunnerConfig = RunnerConfig()
    #: Observability switches (profiler, metrics, tracing; all off by default).
    obs: ObsConfig = ObsConfig()

    def __post_init__(self) -> None:
        for name, section_cls in _RUN_SECTIONS.items():
            value = getattr(self, name)
            if not isinstance(value, section_cls):
                raise TypeError(
                    f"RunConfig.{name} must be a {section_cls.__name__}, "
                    f"got {type(value).__name__}"
                )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Nested plain-dict form of the whole tree (JSON-ready)."""
        return {name: getattr(self, name).to_dict() for name in _RUN_SECTIONS}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunConfig":
        """Rebuild the full tree from nested plain dicts.

        Missing sections fall back to their defaults; unknown section names
        or unknown keys inside a section raise :class:`ValueError`.
        """
        if not isinstance(data, Mapping):
            raise TypeError(f"RunConfig must be built from a mapping, got {type(data).__name__}")
        unknown = sorted(set(data) - set(_RUN_SECTIONS))
        if unknown:
            raise ValueError(
                f"unknown section(s) {unknown} for RunConfig; "
                f"known sections: {sorted(_RUN_SECTIONS)}"
            )
        kwargs = {
            name: _RUN_SECTIONS[name].from_dict(value) for name, value in data.items()
        }
        return cls(**kwargs)

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """JSON form of the tree (stable key order)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunConfig":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))
