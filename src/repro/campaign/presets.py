"""Scale presets of the campaign CLI.

Mirrors the ``--scale`` convention of the figure commands: ``smoke`` is a
structural check running in seconds, ``default`` is the benchmark-harness
scale, ``paper`` approaches the paper's sample sizes (minutes).  All presets
satisfy the grid floor the acceptance tests rely on (at least 3 scenarios x
2 policies x 2 seeds).
"""

from __future__ import annotations

from repro.campaign.spec import CampaignSpec, PolicySpec
from repro.scenarios.catalog import DEFAULT_SCENARIOS

__all__ = ["campaign_for_scale"]


def campaign_for_scale(scale: str, master_seed: int = 0) -> CampaignSpec:
    """Preset :class:`CampaignSpec` for one ``--scale`` value.

    ``smoke``: 3 fast scenarios x {standard, ulba} x 2 seeds (12 cells);
    ``default``: the full catalog x {standard, ulba, ulba-dynamic} x 3 seeds;
    ``paper``: the full catalog at Figure-4 sizes x 5 seeds.
    """
    if scale == "smoke":
        return CampaignSpec(
            name="smoke",
            scenarios=("synthetic-hotspot", "bursty", "sinusoidal-drift"),
            policies=(PolicySpec("standard"), PolicySpec("ulba")),
            # 16 PEs minimum: with fewer PEs the z-score-3 overload detector
            # cannot fire (max attainable z-score among P values ~ sqrt(P-1))
            # and ULBA would degenerate to the standard split.
            num_seeds=2,
            num_pes=16,
            columns_per_pe=24,
            rows=24,
            iterations=30,
            master_seed=master_seed,
        )
    if scale == "default":
        return CampaignSpec(
            name="default",
            scenarios=DEFAULT_SCENARIOS,
            policies=(
                PolicySpec("standard"),
                PolicySpec("ulba"),
                PolicySpec("ulba-dynamic"),
            ),
            num_seeds=3,
            num_pes=16,
            columns_per_pe=48,
            rows=48,
            iterations=40,
            master_seed=master_seed,
        )
    if scale == "paper":
        return CampaignSpec(
            name="paper",
            scenarios=DEFAULT_SCENARIOS,
            policies=(
                PolicySpec("standard"),
                PolicySpec("ulba"),
                PolicySpec("ulba-dynamic"),
            ),
            num_seeds=5,
            num_pes=32,
            columns_per_pe=96,
            rows=96,
            iterations=80,
            master_seed=master_seed,
        )
    raise ValueError(f"unknown campaign scale {scale!r}")
