"""Campaign execution: parallel cell runner with JSONL resume.

:func:`run_campaign` executes the cells of a :class:`~repro.campaign.spec.CampaignSpec`,
optionally across worker processes, and persists one JSON object per
completed cell to a JSONL file.  Persistence doubles as the resume log: a
rerun with the same spec and output path loads the file first and only
executes the cells whose ids are not on disk yet, so an interrupted campaign
(Ctrl-C, crashed worker, killed CI job) continues where it stopped instead
of starting over.

Work is dispatched as *seed-batches*: the pending cells are grouped into
(scenario, policy) groups whose members differ only in their repetition
seed, and each group executes all of its seeds as one vectorized replica
batch (:meth:`repro.api.session.Session.run_batch` on the replica-batched
engine of :mod:`repro.batch`).  Worker processes therefore parallelize over
the groups while the replica axis is vectorized inside each worker.  Each
worker rebuilds its cells from the picklable
:class:`~repro.campaign.spec.CampaignCell` descriptors alone, so results
are identical whether a cell runs serially, under ``--jobs N``, in a
resumed invocation or as one replica of a batch (the batch engine is
bit-identical to solo runs; only the bookkeeping field ``wall_time``
varies).
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import pickle
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.api.config import ObsConfig
from repro.api.events import CampaignCellEvent, EventBus
from repro.api.session import Session
from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import StageProfile, merge_stage_snapshots
from repro.obs.trace import TraceWriter

__all__ = [
    "CampaignRun",
    "load_results",
    "run_campaign",
    "run_cell",
    "run_cell_batch",
]

#: One persisted result row: plain JSON-serialisable cell outcome.
CellRow = Dict[str, object]

#: Worker-side execution info shipped back next to the rows: worker pid,
#: epoch start, wall time and (when observability is on) profiler/metrics
#: snapshots -- everything is plain dicts so it crosses the Pool boundary.
BatchInfo = Dict[str, object]


def _cell_config(cell: CampaignCell, obs: Optional[ObsConfig]):
    """The cell's run config, with the campaign's obs section grafted on."""
    config = cell.run_config()
    if obs is not None and obs.any_enabled:
        config = dataclasses.replace(config, obs=obs)
    return config


def _session_telemetry(session: Session, telemetry: Optional[dict]) -> None:
    """Snapshot a session's profiler/metrics into the telemetry dict."""
    if telemetry is None:
        return
    if session.profiler is not None:
        telemetry["profile"] = session.profiler.snapshot()
    if session.metrics is not None:
        telemetry["metrics"] = session.metrics.snapshot()


def run_cell(
    cell: CampaignCell,
    *,
    obs: Optional[ObsConfig] = None,
    telemetry: Optional[dict] = None,
) -> CellRow:
    """Execute one campaign cell and return its JSON-serialisable row.

    Hands the cell's declarative run config to the
    :class:`~repro.api.session.Session` facade -- which builds the scenario
    instance for the cell's seed, the virtual cluster with the campaign's
    interconnect model and the policy pair via the LB registry -- and
    summarises the trace.  Deterministic except for the ``wall_time``
    bookkeeping field.  ``obs`` grafts an observability section onto the
    cell's config (profiling never perturbs the simulated results);
    ``telemetry`` receives the profiler/metrics snapshots when provided.
    """
    started = time.perf_counter()
    session = Session.from_config(_cell_config(cell, obs))
    result = session.run()
    _session_telemetry(session, telemetry)
    return {
        "cell_id": cell.cell_id,
        "scenario": cell.scenario,
        "policy": cell.policy.label,
        "policy_kind": cell.policy.kind,
        "alpha": cell.policy.alpha,
        "seed_index": cell.seed_index,
        "seed": cell.seed,
        "num_pes": cell.num_pes,
        "iterations": cell.iterations,
        "latency": cell.latency,
        "bandwidth": cell.bandwidth,
        "bytes_per_load_unit": cell.bytes_per_load_unit,
        "pe_speed": cell.pe_speed,
        "total_time": result.total_time,
        "num_lb_calls": result.num_lb_calls,
        "mean_utilization": result.mean_utilization,
        "model_N": session.scenario_instance.parameters.num_overloading,
        "wall_time": time.perf_counter() - started,
    }


def run_cell_batch(
    cells: Sequence[CampaignCell],
    *,
    obs: Optional[ObsConfig] = None,
    telemetry: Optional[dict] = None,
) -> List[CellRow]:
    """Execute one seed-batch -- all repetitions of one (scenario, policy).

    The cells must differ only in their seeding (the runner groups them that
    way); their shared :class:`~repro.api.config.RunConfig` is handed to
    :meth:`repro.api.session.Session.run_batch`, which executes every seed
    as one replica of a single vectorized pass.  Multiprocessing therefore
    parallelizes over (scenario, policy) groups while the replica axis is
    vectorized inside each worker.  Each returned row is bit-identical to
    what :func:`run_cell` computes for that cell (only the bookkeeping
    ``wall_time``, here the per-replica share of the batch, differs).
    ``obs``/``telemetry`` behave as on :func:`run_cell`.
    """
    started = time.perf_counter()
    if len(cells) == 1:
        return [run_cell(cells[0], obs=obs, telemetry=telemetry)]
    session = Session.from_config(_cell_config(cells[0], obs))
    batch = session.run_batch(seeds=[cell.seed for cell in cells])
    _session_telemetry(session, telemetry)
    wall_share = (time.perf_counter() - started) / len(cells)
    rows: List[CellRow] = []
    for cell, result, instance in zip(cells, batch.replicas, session.batch_instances):
        rows.append(
            {
                "cell_id": cell.cell_id,
                "scenario": cell.scenario,
                "policy": cell.policy.label,
                "policy_kind": cell.policy.kind,
                "alpha": cell.policy.alpha,
                "seed_index": cell.seed_index,
                "seed": cell.seed,
                "num_pes": cell.num_pes,
                "iterations": cell.iterations,
                "latency": cell.latency,
                "bandwidth": cell.bandwidth,
                "bytes_per_load_unit": cell.bytes_per_load_unit,
                "pe_speed": cell.pe_speed,
                "total_time": result.total_time,
                "num_lb_calls": result.num_lb_calls,
                "mean_utilization": result.mean_utilization,
                "model_N": instance.parameters.num_overloading,
                "wall_time": wall_share,
            }
        )
    return rows


def _run_batch_task(
    task: "Tuple[List[CampaignCell], Optional[ObsConfig]]",
) -> "Tuple[List[CellRow], BatchInfo]":
    """Pool task: one seed-batch plus its worker-side execution info.

    Returns the rows unchanged (the persisted row schema stays exactly what
    :func:`run_cell` produces) and a separate info dict carrying the worker
    pid, the epoch-clock start (``time.time_ns`` -- the only clock that is
    meaningful across processes) and the optional obs snapshots; the parent
    turns these into ``"campaign_cell"`` events, worker-pid trace tracks and
    merged metrics/profiles.
    """
    cells, obs = task
    start_ns = time.time_ns()
    started = time.perf_counter()
    telemetry: dict = {}
    rows = run_cell_batch(cells, obs=obs, telemetry=telemetry)
    telemetry.update(
        worker_pid=os.getpid(),
        start_ns=start_ns,
        wall_time=time.perf_counter() - started,
    )
    return rows, telemetry


def _trace_batch(
    writer: TraceWriter,
    rows: Sequence[CellRow],
    info: BatchInfo,
    named_pids: set,
) -> None:
    """Record one seed-batch on its worker's trace track.

    One complete event spans the whole batch (tid 0) and each cell gets an
    evenly divided sub-span (tid 1) -- the worker measures only the batch
    wall time, mirroring the ``wall_time`` = per-replica-share convention of
    the persisted rows.  All timestamps are epoch nanoseconds shipped from
    the worker, so tracks from different pids line up in the viewer.
    """
    pid = int(info.get("worker_pid", 0))
    if pid not in named_pids:
        writer.set_process_name(f"worker {pid}", pid=pid)
        writer.set_thread_name("seed batches", pid=pid, tid=0)
        writer.set_thread_name("cells", pid=pid, tid=1)
        named_pids.add(pid)
    start_ns = int(info.get("start_ns", 0))
    dur_ns = max(int(float(info.get("wall_time", 0.0)) * 1e9), 1)
    first = rows[0]
    writer.complete(
        f"batch:{first['scenario']}|{first['policy']}",
        start_ns,
        dur_ns,
        cat="campaign_batch",
        pid=pid,
        args={"cells": len(rows)},
    )
    share = max(dur_ns // len(rows), 1)
    for index, row in enumerate(rows):
        writer.complete(
            f"cell:{row['cell_id']}",
            start_ns + index * share,
            share,
            cat="campaign_cell",
            pid=pid,
            tid=1,
            args={
                "total_time": float(row["total_time"]),
                "num_lb_calls": int(row["num_lb_calls"]),
            },
        )


def _seed_batches(cells: Sequence[CampaignCell]) -> List[List[CampaignCell]]:
    """Group cells into seed-batches: same cell in everything but the seed.

    Grouping preserves first-appearance order of both the groups and the
    cells inside them, so batched execution visits cells in the same
    deterministic order as the flat grid.
    """
    groups: Dict[tuple, List[CampaignCell]] = {}
    for cell in cells:
        key = (
            cell.scenario,
            cell.policy,
            cell.num_pes,
            cell.columns_per_pe,
            cell.rows,
            cell.iterations,
            cell.latency,
            cell.bandwidth,
            cell.bytes_per_load_unit,
            cell.pe_speed,
        )
        groups.setdefault(key, []).append(cell)
    return list(groups.values())


def load_results(path: Union[str, Path]) -> List[CellRow]:
    """Load previously persisted rows from a JSONL file (missing file: []).

    Malformed trailing lines (e.g. a run killed mid-write) are ignored, so a
    resumed campaign simply re-executes the affected cell.  Rows sharing a
    ``cell_id`` are de-duplicated keeping the **newest** (last appended) row:
    the log is append-only, so a rerun that re-executed a cell -- e.g. after
    :func:`_heal_torn_tail` invalidated a torn duplicate of it -- appends a
    fresh row after the stale one, and the fresh row is the one a resume (or
    a report over the loaded rows) must trust.
    """
    path = Path(path)
    if not path.exists():
        return []
    by_id: Dict[str, CellRow] = {}
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(row, dict) and "cell_id" in row:
                # Last occurrence wins; re-inserting moves nothing (dicts
                # keep first-insertion order), so the returned order is the
                # first-appearance order of the cell ids.
                by_id[str(row["cell_id"])] = row
    return list(by_id.values())


def _heal_torn_tail(path: Path) -> None:
    """Terminate a torn final line (crash mid-write) before appending.

    Without this, the first row appended by a resumed run would concatenate
    onto the partial line and both rows would be lost to the JSON parser.
    The torn line itself stays unparseable, so its cell simply re-runs.
    """
    if not path.exists():
        return
    with path.open("rb+") as handle:
        handle.seek(0, 2)
        if handle.tell() == 0:
            return
        handle.seek(-1, 2)
        if handle.read(1) != b"\n":
            handle.write(b"\n")


def _row_matches_cell(row: CellRow, cell: CampaignCell) -> bool:
    """True when a persisted row was produced by exactly this cell.

    The cell id encodes scenario, policy label, grid size and seeding, but
    not the full-precision ``alpha`` or the interconnect model; comparing
    those fields too keeps resume from silently reusing results of a spec
    that shares the id but simulates a different machine.
    """
    checks = {
        "seed": cell.seed,
        "alpha": cell.policy.alpha,
        "latency": cell.latency,
        "bandwidth": cell.bandwidth,
        "bytes_per_load_unit": cell.bytes_per_load_unit,
        "pe_speed": cell.pe_speed,
    }
    return all(row.get(key) == value for key, value in checks.items())


def _shippable_scenarios() -> List[object]:
    """Snapshot of the scenario registry that can travel to worker processes.

    Under the ``spawn`` / ``forkserver`` start methods, workers re-import
    the library and therefore only see the built-in catalog -- a campaign
    over a scenario the caller registered at runtime would die mid-run with
    an unknown-scenario error.  The snapshot is re-registered by the pool
    initializer (:func:`_init_worker`).  Entries that cannot pickle (e.g. a
    scenario built around a lambda or a closure) are skipped: ``fork``
    workers inherit them anyway, and under ``spawn`` they were never going
    to cross the process boundary -- their cells then fail with the same
    clear unknown-scenario error as before instead of poisoning the pool.
    """
    import repro.scenarios  # noqa: F401  -- populates the built-in catalog
    from repro.scenarios import available_scenarios

    shippable: List[object] = []
    for scenario in available_scenarios():
        try:
            pickle.dumps(scenario)
        except Exception:
            continue
        shippable.append(scenario)
    return shippable


def _init_worker(scenarios: Sequence[object]) -> None:
    """Pool initializer: mirror the parent's scenario catalog in the worker."""
    from repro.scenarios.registry import register

    for scenario in scenarios:
        register(scenario, replace=True)


def _pool_context(mp_start_method: Optional[str]) -> multiprocessing.context.BaseContext:
    """Resolve the multiprocessing context of the worker pool.

    ``None`` prefers ``fork`` where available (cheapest start-up; workers
    inherit even unpicklable registry entries) and otherwise falls back to
    the platform default.  An explicit method must be supported on the
    platform.
    """
    methods = multiprocessing.get_all_start_methods()
    if mp_start_method is None:
        return multiprocessing.get_context("fork" if "fork" in methods else None)
    if mp_start_method not in methods:
        raise ValueError(
            f"mp_start_method must be one of {methods} on this platform, "
            f"got {mp_start_method!r}"
        )
    return multiprocessing.get_context(mp_start_method)


@dataclass(frozen=True)
class CampaignRun:
    """Outcome of one :func:`run_campaign` invocation."""

    #: The spec that was executed.
    spec: CampaignSpec
    #: Every known result row (resumed + freshly executed), cell order.
    rows: List[CellRow]
    #: Number of cells executed by this invocation.
    executed: int
    #: Number of cells skipped because they were already on disk.
    skipped: int
    #: Output path the rows were persisted to (None = no persistence).
    out_path: Optional[Path]
    #: Merged hot-loop stage profile across every worker (``obs.profile``).
    profile: Optional[StageProfile] = None
    #: Merged metrics across every worker (``obs.metrics``).
    metrics: Optional[MetricsRegistry] = None
    #: Campaign-level Chrome trace, one track per worker pid (``obs.trace``).
    trace: Optional[TraceWriter] = None

    @property
    def num_cells(self) -> int:
        """Number of result rows."""
        return len(self.rows)


def run_campaign(
    spec: CampaignSpec,
    *,
    jobs: int = 1,
    out_path: Optional[Union[str, Path]] = None,
    name_filter: Optional[str] = None,
    resume: bool = True,
    on_cell_done: Optional[Callable[[CellRow], None]] = None,
    mp_start_method: Optional[str] = None,
    events: Optional[EventBus] = None,
    obs: Optional[ObsConfig] = None,
) -> CampaignRun:
    """Execute a campaign, resuming from ``out_path`` when it already exists.

    Parameters
    ----------
    spec:
        The campaign grid to run.
    jobs:
        Worker processes; ``1`` runs serially in-process, ``N > 1`` fans the
        pending cells out over a :class:`multiprocessing.Pool`.
    out_path:
        JSONL file results are appended to as cells complete (flushed per
        row, so progress survives interruption).  ``None`` disables
        persistence (and therefore resume).  Note that seed-batching makes
        one (scenario, policy) seed group the unit of completion: an
        interruption mid-batch loses that group's in-flight seeds (they
        simply re-run, again as one batch, on resume), whereas completed
        groups are fully persisted.
    name_filter:
        Substring filter on cell ids (the CLI's ``--filter``).
    resume:
        When true (default), cells whose ids already appear in ``out_path``
        are loaded instead of re-executed.
    on_cell_done:
        Progress callback invoked with each freshly executed row.
    mp_start_method:
        Start method of the worker pool (``"fork"`` / ``"spawn"`` /
        ``"forkserver"``); ``None`` prefers ``fork`` where available.
        Scenarios registered by the calling process are shipped to the
        workers through the pool initializer either way, so campaigns over
        user-registered scenarios work under ``spawn`` too (previously they
        crashed mid-run with an unknown-scenario error).
    events:
        Optional :class:`~repro.api.events.EventBus`; one
        :class:`~repro.api.events.CampaignCellEvent` is emitted per freshly
        executed cell (resumed cells emit nothing) -- the live
        ``--progress`` line subscribes here.
    obs:
        Optional :class:`~repro.api.config.ObsConfig` enabling campaign
        observability: ``profile``/``metrics`` run inside every worker and
        their snapshots merge into :attr:`CampaignRun.profile` /
        :attr:`CampaignRun.metrics`; ``trace`` builds a campaign-level
        Chrome trace (:attr:`CampaignRun.trace`) with one track per worker
        pid, one span per seed-batch and one sub-span per cell (epoch
        clock, so tracks from different processes line up).  Rows are
        unaffected either way.

    Returns
    -------
    CampaignRun
        All rows of the (possibly filtered) grid in deterministic cell
        order, plus executed/skipped bookkeeping.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    cells = spec.cells(name_filter=name_filter)

    obs_enabled = obs is not None and obs.any_enabled
    merged_metrics = MetricsRegistry() if (obs_enabled and obs.metrics) else None
    profile_snapshots: List[dict] = []
    trace_writer: Optional[TraceWriter] = None
    campaign_start_ns = 0
    # Workers never build their own TraceWriter: perf_counter_ns spans from
    # different processes share no clock, so the campaign trace is
    # synthesized parent-side on the epoch clock (time.time_ns) instead.
    worker_obs = dataclasses.replace(obs, trace=False) if obs_enabled else None
    if worker_obs is not None and not worker_obs.any_enabled:
        worker_obs = None
    if obs_enabled and obs.trace:
        trace_writer = TraceWriter(max_events=obs.trace_max_events)
        trace_writer.set_process_name("campaign driver")
        campaign_start_ns = time.time_ns()

    by_id = {cell.cell_id: cell for cell in cells}
    done: Dict[str, CellRow] = {}
    out = Path(out_path) if out_path is not None else None
    if out is not None and resume:
        for row in load_results(out):
            cell_id = str(row["cell_id"])
            cell = by_id.get(cell_id)
            # Trust a persisted row only when it provably came from this
            # cell (same seed, alpha and interconnect model); otherwise the
            # file belongs to a different campaign and the cell re-runs.
            if cell is not None and _row_matches_cell(row, cell):
                done[cell_id] = row
    pending = [cell for cell in cells if cell.cell_id not in done]
    skipped = len(cells) - len(pending)

    fresh: Dict[str, CellRow] = {}
    if pending:
        # Seed-batches: every (scenario, policy) group runs its repetition
        # seeds as one vectorized replica batch (repro.batch); worker
        # processes parallelize over the groups.
        batches = _seed_batches(pending)
        tasks = [(batch, worker_obs) for batch in batches]
        if out is not None:
            out.parent.mkdir(parents=True, exist_ok=True)
            _heal_torn_tail(out)
        sink = out.open("a", encoding="utf-8") if out is not None else None
        completed_cells = 0
        named_pids: set = set()
        try:
            if jobs == 1 or len(batches) == 1:
                completed = map(_run_batch_task, tasks)
                pool = None
            else:
                # The initializer re-registers the caller's scenario catalog
                # in every worker, so user-registered scenarios survive the
                # spawn/forkserver start methods (fork workers inherit the
                # registry anyway and the re-registration is a no-op).
                context = _pool_context(mp_start_method)
                pool = context.Pool(
                    processes=min(jobs, len(batches)),
                    initializer=_init_worker,
                    initargs=(_shippable_scenarios(),),
                )
                completed = pool.imap_unordered(_run_batch_task, tasks)
            try:
                for batch_rows, info in completed:
                    worker_pid = int(info.get("worker_pid", 0))
                    if merged_metrics is not None:
                        snapshot = info.get("metrics")
                        if snapshot:
                            merged_metrics.merge(snapshot)
                        merged_metrics.inc("campaign/cells", len(batch_rows))
                        merged_metrics.inc(
                            f"campaign/worker/{worker_pid}/cells", len(batch_rows)
                        )
                    if obs_enabled and obs.profile and info.get("profile"):
                        profile_snapshots.append(info["profile"])
                    if trace_writer is not None:
                        _trace_batch(trace_writer, batch_rows, info, named_pids)
                    for row in batch_rows:
                        fresh[str(row["cell_id"])] = row
                        completed_cells += 1
                        if sink is not None:
                            sink.write(json.dumps(row) + "\n")
                            sink.flush()
                        if on_cell_done is not None:
                            on_cell_done(row)
                        if events is not None and events.has_listeners(
                            "campaign_cell"
                        ):
                            events.emit(
                                "campaign_cell",
                                CampaignCellEvent(
                                    cell_id=str(row["cell_id"]),
                                    scenario=str(row["scenario"]),
                                    policy=str(row["policy"]),
                                    total_time=float(row["total_time"]),
                                    num_lb_calls=int(row["num_lb_calls"]),
                                    worker_pid=worker_pid,
                                    index=completed_cells,
                                    total=len(pending),
                                ),
                            )
            except BaseException:
                # Ctrl-C or a failing callback/worker: kill the queued cells
                # instead of draining them -- the JSONL log already holds
                # every completed row, so a rerun resumes from there.
                if pool is not None:
                    pool.terminate()
                    pool.join()
                raise
            else:
                if pool is not None:
                    pool.close()
                    pool.join()
        finally:
            if sink is not None:
                sink.close()

    rows = [
        done.get(cell.cell_id) or fresh[cell.cell_id]
        for cell in cells
    ]
    if trace_writer is not None:
        trace_writer.complete(
            "campaign",
            campaign_start_ns,
            time.time_ns() - campaign_start_ns,
            cat="campaign",
            args={"executed": len(fresh), "skipped": skipped},
        )
    return CampaignRun(
        spec=spec,
        rows=rows,
        executed=len(fresh),
        skipped=skipped,
        out_path=out,
        profile=(
            merge_stage_snapshots(profile_snapshots)
            if obs_enabled and obs.profile
            else None
        ),
        metrics=merged_metrics,
        trace=trace_writer,
    )
