"""Campaign execution: parallel cell runner with JSONL resume.

:func:`run_campaign` executes the cells of a :class:`~repro.campaign.spec.CampaignSpec`,
optionally across worker processes, and persists one JSON object per
completed cell to a JSONL file.  Persistence doubles as the resume log: a
rerun with the same spec and output path loads the file first and only
executes the cells whose ids are not on disk yet, so an interrupted campaign
(Ctrl-C, crashed worker, killed CI job) continues where it stopped instead
of starting over.

Work is dispatched as *seed-batches*: the pending cells are grouped into
(scenario, policy) groups whose members differ only in their repetition
seed, and each group executes all of its seeds as one vectorized replica
batch (:meth:`repro.api.session.Session.run_batch` on the replica-batched
engine of :mod:`repro.batch`).  Worker processes therefore parallelize over
the groups while the replica axis is vectorized inside each worker.  Each
worker rebuilds its cells from the picklable
:class:`~repro.campaign.spec.CampaignCell` descriptors alone, so results
are identical whether a cell runs serially, under ``--jobs N``, in a
resumed invocation or as one replica of a batch (the batch engine is
bit-identical to solo runs; only the bookkeeping field ``wall_time``
varies).

Multi-process dispatch is *supervised* (:mod:`repro.resilience`): every
in-flight seed-batch has a deadline and its worker a heartbeat, dead or
hung workers are killed and restarted, lost batches re-dispatch under
bounded backoff, and a batch that keeps failing is split into single cells
to isolate the culprit.  With a ``quarantine`` sidecar configured the
poisoned cell is recorded there (with full replay context) and the campaign
continues; without one the first irrecoverable failure raises with the
original worker traceback attached (fail-fast, the library default).  A
first SIGINT/SIGTERM drains in-flight batches and returns the partial run
(``interrupted=True``); a second one hard-kills.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import pickle
import signal
import threading
import traceback as traceback_module
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.api.config import ObsConfig
from repro.api.events import (
    EV_CAMPAIGN_CELL,
    EV_CAMPAIGN_FAULT,
    EV_WORKER_HEARTBEAT,
    CampaignCellEvent,
    CampaignFaultEvent,
    EventBus,
    WorkerHeartbeatEvent,
)
from repro.api.session import Session
from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.obs.clock import epoch_ns, wall_clock
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import StageProfile, merge_stage_snapshots
from repro.obs.trace import TraceWriter
from repro.resilience.chaos import ChaosConfig
from repro.resilience.errors import CellError
from repro.resilience.pool import SupervisedPool, TaskFailure, TaskResult
from repro.resilience.quarantine import QuarantineEntry, QuarantineLog
from repro.resilience.retry import RetryPolicy

__all__ = [
    "CampaignRun",
    "load_results",
    "run_campaign",
    "run_cell",
    "run_cell_batch",
]

#: One persisted result row: plain JSON-serialisable cell outcome.
CellRow = Dict[str, object]

#: Worker-side execution info shipped back next to the rows: worker pid,
#: epoch start, wall time and (when observability is on) profiler/metrics
#: snapshots -- everything is plain dicts so it crosses the Pool boundary.
BatchInfo = Dict[str, object]


def _cell_config(cell: CampaignCell, obs: Optional[ObsConfig]):
    """The cell's run config, with the campaign's obs section grafted on."""
    config = cell.run_config()
    if obs is not None and obs.any_enabled:
        config = dataclasses.replace(config, obs=obs)
    return config


def _session_telemetry(session: Session, telemetry: Optional[dict]) -> None:
    """Snapshot a session's profiler/metrics into the telemetry dict."""
    if telemetry is None:
        return
    if session.profiler is not None:
        telemetry["profile"] = session.profiler.snapshot()
    if session.metrics is not None:
        telemetry["metrics"] = session.metrics.snapshot()


def run_cell(
    cell: CampaignCell,
    *,
    obs: Optional[ObsConfig] = None,
    telemetry: Optional[dict] = None,
) -> CellRow:
    """Execute one campaign cell and return its JSON-serialisable row.

    Hands the cell's declarative run config to the
    :class:`~repro.api.session.Session` facade -- which builds the scenario
    instance for the cell's seed, the virtual cluster with the campaign's
    interconnect model and the policy pair via the LB registry -- and
    summarises the trace.  Deterministic except for the ``wall_time``
    bookkeeping field.  ``obs`` grafts an observability section onto the
    cell's config (profiling never perturbs the simulated results);
    ``telemetry`` receives the profiler/metrics snapshots when provided.
    """
    started = wall_clock()
    session = Session.from_config(_cell_config(cell, obs))
    result = session.run()
    _session_telemetry(session, telemetry)
    return {
        "cell_id": cell.cell_id,
        "scenario": cell.scenario,
        "policy": cell.policy.label,
        "policy_kind": cell.policy.kind,
        "alpha": cell.policy.alpha,
        "seed_index": cell.seed_index,
        "seed": cell.seed,
        "num_pes": cell.num_pes,
        "iterations": cell.iterations,
        "latency": cell.latency,
        "bandwidth": cell.bandwidth,
        "bytes_per_load_unit": cell.bytes_per_load_unit,
        "pe_speed": cell.pe_speed,
        "total_time": result.total_time,
        "num_lb_calls": result.num_lb_calls,
        "mean_utilization": result.mean_utilization,
        "model_N": session.scenario_instance.parameters.num_overloading,
        "wall_time": wall_clock() - started,
    }


def run_cell_batch(
    cells: Sequence[CampaignCell],
    *,
    obs: Optional[ObsConfig] = None,
    telemetry: Optional[dict] = None,
) -> List[CellRow]:
    """Execute one seed-batch -- all repetitions of one (scenario, policy).

    The cells must differ only in their seeding (the runner groups them that
    way); their shared :class:`~repro.api.config.RunConfig` is handed to
    :meth:`repro.api.session.Session.run_batch`, which executes every seed
    as one replica of a single vectorized pass.  Multiprocessing therefore
    parallelizes over (scenario, policy) groups while the replica axis is
    vectorized inside each worker.  Each returned row is bit-identical to
    what :func:`run_cell` computes for that cell (only the bookkeeping
    ``wall_time``, here the per-replica share of the batch, differs).
    ``obs``/``telemetry`` behave as on :func:`run_cell`.
    """
    started = wall_clock()
    if len(cells) == 1:
        return [run_cell(cells[0], obs=obs, telemetry=telemetry)]
    session = Session.from_config(_cell_config(cells[0], obs))
    batch = session.run_batch(seeds=[cell.seed for cell in cells])
    _session_telemetry(session, telemetry)
    wall_share = (wall_clock() - started) / len(cells)
    rows: List[CellRow] = []
    for cell, result, instance in zip(cells, batch.replicas, session.batch_instances):
        rows.append(
            {
                "cell_id": cell.cell_id,
                "scenario": cell.scenario,
                "policy": cell.policy.label,
                "policy_kind": cell.policy.kind,
                "alpha": cell.policy.alpha,
                "seed_index": cell.seed_index,
                "seed": cell.seed,
                "num_pes": cell.num_pes,
                "iterations": cell.iterations,
                "latency": cell.latency,
                "bandwidth": cell.bandwidth,
                "bytes_per_load_unit": cell.bytes_per_load_unit,
                "pe_speed": cell.pe_speed,
                "total_time": result.total_time,
                "num_lb_calls": result.num_lb_calls,
                "mean_utilization": result.mean_utilization,
                "model_N": instance.parameters.num_overloading,
                "wall_time": wall_share,
            }
        )
    return rows


def _run_batch_task(
    task: "Tuple[List[CampaignCell], Optional[ObsConfig]]",
) -> "Tuple[List[CellRow], BatchInfo]":
    """Pool task: one seed-batch plus its worker-side execution info.

    Returns the rows unchanged (the persisted row schema stays exactly what
    :func:`run_cell` produces) and a separate info dict carrying the worker
    pid, the epoch-clock start (``time.time_ns`` -- the only clock that is
    meaningful across processes) and the optional obs snapshots; the parent
    turns these into ``"campaign_cell"`` events, worker-pid trace tracks and
    merged metrics/profiles.
    """
    cells, obs = task
    start_ns = epoch_ns()
    started = wall_clock()
    telemetry: dict = {}
    rows = run_cell_batch(cells, obs=obs, telemetry=telemetry)
    telemetry.update(
        worker_pid=os.getpid(),
        start_ns=start_ns,
        wall_time=wall_clock() - started,
    )
    return rows, telemetry


#: A supervised task payload: the seed-batch, the worker-side obs config
#: and the chaos injector (None outside chaos runs).
TaskPayload = Tuple[List[CampaignCell], Optional[ObsConfig], Optional[ChaosConfig]]


def _supervised_batch_task(
    payload: TaskPayload, attempt: int
) -> "Tuple[List[CellRow], BatchInfo]":
    """Supervised-pool task function: chaos gate, then the real seed-batch.

    The fault injector runs *before* any simulation work, so a cell that
    survives injection produces a row bit-identical to a fault-free run;
    ``attempt`` feeds the injector's per-attempt decision (transient faults
    stop firing once a cell used up its injection cap).
    """
    cells, obs, chaos = payload
    if chaos is not None and chaos.any_enabled:
        chaos.inject([cell.cell_id for cell in cells], attempt)
    return _run_batch_task((cells, obs))


def _subdivide_payload(payload: TaskPayload) -> Optional[List[TaskPayload]]:
    """Split a failed multi-cell payload into single-cell payloads.

    The supervised pool calls this when a seed-batch exhausts its retries
    (or fails deterministically): re-running the cells one by one isolates
    the poisoned cell while its siblings complete normally.  Single-cell
    payloads return ``None`` -- they are already irreducible.
    """
    cells, obs, chaos = payload
    if len(cells) <= 1:
        return None
    return [([cell], obs, chaos) for cell in cells]


def _trace_batch(
    writer: TraceWriter,
    rows: Sequence[CellRow],
    info: BatchInfo,
    named_pids: set,
) -> None:
    """Record one seed-batch on its worker's trace track.

    One complete event spans the whole batch (tid 0) and each cell gets an
    evenly divided sub-span (tid 1) -- the worker measures only the batch
    wall time, mirroring the ``wall_time`` = per-replica-share convention of
    the persisted rows.  All timestamps are epoch nanoseconds shipped from
    the worker, so tracks from different pids line up in the viewer.
    """
    pid = int(info.get("worker_pid", 0))
    if pid not in named_pids:
        writer.set_process_name(f"worker {pid}", pid=pid)
        writer.set_thread_name("seed batches", pid=pid, tid=0)
        writer.set_thread_name("cells", pid=pid, tid=1)
        named_pids.add(pid)
    start_ns = int(info.get("start_ns", 0))
    dur_ns = max(int(float(info.get("wall_time", 0.0)) * 1e9), 1)
    first = rows[0]
    writer.complete(
        f"batch:{first['scenario']}|{first['policy']}",
        start_ns,
        dur_ns,
        cat="campaign_batch",
        pid=pid,
        args={"cells": len(rows)},
    )
    share = max(dur_ns // len(rows), 1)
    for index, row in enumerate(rows):
        writer.complete(
            f"cell:{row['cell_id']}",
            start_ns + index * share,
            share,
            cat="campaign_cell",
            pid=pid,
            tid=1,
            args={
                "total_time": float(row["total_time"]),
                "num_lb_calls": int(row["num_lb_calls"]),
            },
        )


def _seed_batches(cells: Sequence[CampaignCell]) -> List[List[CampaignCell]]:
    """Group cells into seed-batches: same cell in everything but the seed.

    Grouping preserves first-appearance order of both the groups and the
    cells inside them, so batched execution visits cells in the same
    deterministic order as the flat grid.
    """
    groups: Dict[tuple, List[CampaignCell]] = {}
    for cell in cells:
        key = (
            cell.scenario,
            cell.policy,
            cell.num_pes,
            cell.columns_per_pe,
            cell.rows,
            cell.iterations,
            cell.latency,
            cell.bandwidth,
            cell.bytes_per_load_unit,
            cell.pe_speed,
        )
        groups.setdefault(key, []).append(cell)
    return list(groups.values())


def load_results(path: Union[str, Path]) -> List[CellRow]:
    """Load previously persisted rows from a JSONL file (missing file: []).

    Malformed trailing lines (e.g. a run killed mid-write) are ignored, so a
    resumed campaign simply re-executes the affected cell.  Rows sharing a
    ``cell_id`` are de-duplicated keeping the **newest** (last appended) row:
    the log is append-only, so a rerun that re-executed a cell -- e.g. after
    :func:`_heal_torn_tail` invalidated a torn duplicate of it -- appends a
    fresh row after the stale one, and the fresh row is the one a resume (or
    a report over the loaded rows) must trust.
    """
    path = Path(path)
    if not path.exists():
        return []
    by_id: Dict[str, CellRow] = {}
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(row, dict) and "cell_id" in row:
                # Last occurrence wins; re-inserting moves nothing (dicts
                # keep first-insertion order), so the returned order is the
                # first-appearance order of the cell ids.
                by_id[str(row["cell_id"])] = row
    return list(by_id.values())


def _heal_torn_tail(path: Path) -> None:
    """Terminate a torn final line (crash mid-write) before appending.

    Without this, the first row appended by a resumed run would concatenate
    onto the partial line and both rows would be lost to the JSON parser.
    The torn line itself stays unparseable, so its cell simply re-runs.
    """
    if not path.exists():
        return
    with path.open("rb+") as handle:
        handle.seek(0, 2)
        if handle.tell() == 0:
            return
        handle.seek(-1, 2)
        if handle.read(1) != b"\n":
            handle.write(b"\n")


def _row_matches_cell(row: CellRow, cell: CampaignCell) -> bool:
    """True when a persisted row was produced by exactly this cell.

    The cell id encodes scenario, policy label, grid size and seeding, but
    not the full-precision ``alpha`` or the interconnect model; comparing
    those fields too keeps resume from silently reusing results of a spec
    that shares the id but simulates a different machine.
    """
    checks = {
        "seed": cell.seed,
        "alpha": cell.policy.alpha,
        "latency": cell.latency,
        "bandwidth": cell.bandwidth,
        "bytes_per_load_unit": cell.bytes_per_load_unit,
        "pe_speed": cell.pe_speed,
    }
    return all(row.get(key) == value for key, value in checks.items())


def _shippable_scenarios() -> List[object]:
    """Snapshot of the scenario registry that can travel to worker processes.

    Under the ``spawn`` / ``forkserver`` start methods, workers re-import
    the library and therefore only see the built-in catalog -- a campaign
    over a scenario the caller registered at runtime would die mid-run with
    an unknown-scenario error.  The snapshot is re-registered by the pool
    initializer (:func:`_init_worker`).  Entries that cannot pickle (e.g. a
    scenario built around a lambda or a closure) are skipped: ``fork``
    workers inherit them anyway, and under ``spawn`` they were never going
    to cross the process boundary -- their cells then fail with the same
    clear unknown-scenario error as before instead of poisoning the pool.
    """
    import repro.scenarios  # noqa: F401  -- populates the built-in catalog
    from repro.scenarios import available_scenarios

    shippable: List[object] = []
    for scenario in available_scenarios():
        try:
            pickle.dumps(scenario)
        except Exception:
            continue
        shippable.append(scenario)
    return shippable


def _init_worker(scenarios: Sequence[object]) -> None:
    """Pool initializer: mirror the parent's scenario catalog in the worker."""
    from repro.scenarios.registry import register

    for scenario in scenarios:
        register(scenario, replace=True)  # repro: noqa[FLOW-MUT] -- intentional worker-side rehydration: spawn workers start with an empty registry and must repopulate their own copy from the shipped scenarios


def _pool_context(mp_start_method: Optional[str]) -> multiprocessing.context.BaseContext:
    """Resolve the multiprocessing context of the worker pool.

    ``None`` prefers ``fork`` where available (cheapest start-up; workers
    inherit even unpicklable registry entries) and otherwise falls back to
    the platform default.  An explicit method must be supported on the
    platform.
    """
    methods = multiprocessing.get_all_start_methods()
    if mp_start_method is None:
        return multiprocessing.get_context("fork" if "fork" in methods else None)
    if mp_start_method not in methods:
        raise ValueError(
            f"mp_start_method must be one of {methods} on this platform, "
            f"got {mp_start_method!r}"
        )
    return multiprocessing.get_context(mp_start_method)


@dataclass(frozen=True)
class CampaignRun:
    """Outcome of one :func:`run_campaign` invocation."""

    #: The spec that was executed.
    spec: CampaignSpec
    #: Every known result row (resumed + freshly executed), cell order.
    rows: List[CellRow]
    #: Number of cells executed by this invocation.
    executed: int
    #: Number of cells skipped because they were already on disk.
    skipped: int
    #: Output path the rows were persisted to (None = no persistence).
    out_path: Optional[Path]
    #: Merged hot-loop stage profile across every worker (``obs.profile``).
    profile: Optional[StageProfile] = None
    #: Merged metrics across every worker (``obs.metrics``).
    metrics: Optional[MetricsRegistry] = None
    #: Campaign-level Chrome trace, one track per worker pid (``obs.trace``).
    trace: Optional[TraceWriter] = None
    #: Cell ids quarantined by this invocation (empty on a clean run).
    quarantined: Tuple[str, ...] = ()
    #: Pending cells skipped because an earlier run quarantined them.
    skipped_quarantined: int = 0
    #: True when a SIGINT/SIGTERM drained the run before it finished.
    interrupted: bool = False

    @property
    def num_cells(self) -> int:
        """Number of result rows."""
        return len(self.rows)

    @property
    def clean(self) -> bool:
        """True when the run completed fully with nothing quarantined."""
        return (
            not self.interrupted
            and not self.quarantined
            and self.skipped_quarantined == 0
        )


def run_campaign(
    spec: CampaignSpec,
    *,
    jobs: int = 1,
    out_path: Optional[Union[str, Path]] = None,
    name_filter: Optional[str] = None,
    resume: bool = True,
    on_cell_done: Optional[Callable[[CellRow], None]] = None,
    mp_start_method: Optional[str] = None,
    events: Optional[EventBus] = None,
    obs: Optional[ObsConfig] = None,
    retry: Optional[RetryPolicy] = None,
    task_timeout: Optional[float] = None,
    quarantine: Optional[Union[str, Path]] = None,
    retry_quarantined: bool = False,
    chaos: Optional[ChaosConfig] = None,
    install_signal_handlers: Optional[bool] = None,
) -> CampaignRun:
    """Execute a campaign, resuming from ``out_path`` when it already exists.

    Parameters
    ----------
    spec:
        The campaign grid to run.
    jobs:
        Worker processes; ``1`` runs serially in-process, ``N > 1`` fans the
        pending cells out over a supervised worker pool
        (:class:`~repro.resilience.pool.SupervisedPool`) that detects dead
        and hung workers, restarts them and re-dispatches lost batches.
    out_path:
        JSONL file results are appended to as cells complete (flushed per
        row, so progress survives interruption).  ``None`` disables
        persistence (and therefore resume).  Note that seed-batching makes
        one (scenario, policy) seed group the unit of completion: an
        interruption mid-batch loses that group's in-flight seeds (they
        simply re-run, again as one batch, on resume), whereas completed
        groups are fully persisted.
    name_filter:
        Substring filter on cell ids (the CLI's ``--filter``).
    resume:
        When true (default), cells whose ids already appear in ``out_path``
        are loaded instead of re-executed.
    on_cell_done:
        Progress callback invoked with each freshly executed row.
    mp_start_method:
        Start method of the worker pool (``"fork"`` / ``"spawn"`` /
        ``"forkserver"``); ``None`` prefers ``fork`` where available.
        Scenarios registered by the calling process are shipped to the
        workers through the pool initializer either way, so campaigns over
        user-registered scenarios work under ``spawn`` too (previously they
        crashed mid-run with an unknown-scenario error).
    events:
        Optional :class:`~repro.api.events.EventBus`; one
        :class:`~repro.api.events.CampaignCellEvent` is emitted per freshly
        executed cell (resumed cells emit nothing) -- the live
        ``--progress`` line subscribes here.  Supervised runs additionally
        emit :class:`~repro.api.events.CampaignFaultEvent` per supervision
        event and :class:`~repro.api.events.WorkerHeartbeatEvent` per
        worker liveness beat.
    obs:
        Optional :class:`~repro.api.config.ObsConfig` enabling campaign
        observability: ``profile``/``metrics`` run inside every worker and
        their snapshots merge into :attr:`CampaignRun.profile` /
        :attr:`CampaignRun.metrics`; ``trace`` builds a campaign-level
        Chrome trace (:attr:`CampaignRun.trace`) with one track per worker
        pid, one span per seed-batch and one sub-span per cell (epoch
        clock, so tracks from different processes line up).  Rows are
        unaffected either way.
    retry:
        :class:`~repro.resilience.retry.RetryPolicy` bounding how often a
        crashed or timed-out batch is re-dispatched (default: 2 retries
        under exponential backoff with full jitter).  Deterministic task
        exceptions are never retried -- the same code on the same cell
        reproduces the same error.
    task_timeout:
        Per-batch deadline in seconds; a batch running longer has its
        worker killed and counts as a (retryable) timeout.  ``None``
        disables deadlines.  Setting a timeout forces pool dispatch even
        for ``jobs=1`` (an in-process hang cannot be interrupted).
    quarantine:
        Path of the ``*.quarantine.jsonl`` sidecar.  When set, a cell that
        keeps failing after isolation is recorded there -- with the
        exception, worker traceback, attempt count, environment stamp and
        its exact :class:`~repro.api.config.RunConfig` for replay -- and
        the campaign **continues** (check :attr:`CampaignRun.quarantined`).
        When ``None`` (the library default) the first irrecoverable
        failure raises, fail-fast, with the worker traceback attached.  On
        resume, cells quarantined by an earlier run are skipped (counted in
        :attr:`CampaignRun.skipped_quarantined`).
    retry_quarantined:
        Re-execute previously quarantined cells instead of skipping them; a
        cell that now succeeds gets a resolution marker appended to the
        sidecar so later resumes treat it normally.
    chaos:
        Optional :class:`~repro.resilience.chaos.ChaosConfig` fault
        injector (testing/CI only): workers deterministically crash, hang,
        raise or slow down per ``(seed, cell id, attempt)``.  Forces pool
        dispatch so injected crashes kill a worker, never the caller.
    install_signal_handlers:
        Install SIGINT/SIGTERM handlers while executing: the first signal
        drains in-flight batches and returns the partial run
        (:attr:`CampaignRun.interrupted` set, rows persisted as usual); the
        second hard-kills via :class:`KeyboardInterrupt`.  ``None`` (the
        default) auto-installs when running on the main thread; handlers
        are always restored afterwards.

    Returns
    -------
    CampaignRun
        All known rows of the (possibly filtered) grid in deterministic
        cell order -- quarantined and drained cells have no row -- plus
        executed/skipped/quarantined/interrupted bookkeeping.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if task_timeout is not None and task_timeout <= 0:
        raise ValueError(f"task_timeout must be > 0, got {task_timeout}")
    retry_policy = retry if retry is not None else RetryPolicy()
    cells = spec.cells(name_filter=name_filter)

    obs_enabled = obs is not None and obs.any_enabled
    merged_metrics = MetricsRegistry() if (obs_enabled and obs.metrics) else None
    profile_snapshots: List[dict] = []
    trace_writer: Optional[TraceWriter] = None
    campaign_start_ns = 0
    # Workers never build their own TraceWriter: perf_counter_ns spans from
    # different processes share no clock, so the campaign trace is
    # synthesized parent-side on the epoch clock (time.time_ns) instead.
    worker_obs = dataclasses.replace(obs, trace=False) if obs_enabled else None
    if worker_obs is not None and not worker_obs.any_enabled:
        worker_obs = None
    if obs_enabled and obs.trace:
        trace_writer = TraceWriter(max_events=obs.trace_max_events)
        trace_writer.set_process_name("campaign driver")
        campaign_start_ns = epoch_ns()

    by_id = {cell.cell_id: cell for cell in cells}
    done: Dict[str, CellRow] = {}
    out = Path(out_path) if out_path is not None else None
    if out is not None and resume:
        for row in load_results(out):
            cell_id = str(row["cell_id"])
            cell = by_id.get(cell_id)
            # Trust a persisted row only when it provably came from this
            # cell (same seed, alpha and interconnect model); otherwise the
            # file belongs to a different campaign and the cell re-runs.
            if cell is not None and _row_matches_cell(row, cell):
                done[cell_id] = row
    pending = [cell for cell in cells if cell.cell_id not in done]
    skipped = len(cells) - len(pending)

    quarantine_log = QuarantineLog(quarantine) if quarantine is not None else None
    previously_quarantined = quarantine_log.load() if quarantine_log is not None else {}
    skipped_quarantined = 0
    if previously_quarantined and not retry_quarantined:
        unquarantined = [
            cell for cell in pending if cell.cell_id not in previously_quarantined
        ]
        skipped_quarantined = len(pending) - len(unquarantined)
        pending = unquarantined
    to_resolve = set(previously_quarantined) if retry_quarantined else set()

    quarantined: List[str] = []
    fresh: Dict[str, CellRow] = {}
    completed_cells = 0
    named_pids: set = set()
    interrupt = {"signals": 0}
    drain_hooks: List[Callable[[], None]] = []
    pool_stats: Dict[str, int] = {}

    def _emit_fault(
        kind: str,
        cell_ids: Sequence[str],
        attempt: int,
        worker_pid: Optional[int],
        retry_in: Optional[float],
        message: str,
    ) -> None:
        if merged_metrics is not None:
            merged_metrics.inc(f"campaign/faults/{kind}")
        if events is not None and events.has_listeners(EV_CAMPAIGN_FAULT):
            events.emit(
                EV_CAMPAIGN_FAULT,
                CampaignFaultEvent(
                    kind=kind,
                    cell_ids=tuple(cell_ids),
                    attempt=attempt,
                    worker_pid=worker_pid or 0,
                    retry_in=retry_in or 0.0,
                    message=message,
                ),
            )

    def _on_signal(signum, frame) -> None:
        interrupt["signals"] += 1
        if interrupt["signals"] >= 2:
            # Second signal: stop cooperating.  The KeyboardInterrupt
            # unwinds through the supervision loop, which tears every
            # worker down on the way out.
            raise KeyboardInterrupt
        for hook in drain_hooks:
            hook()

    def _consume(batch_rows: List[CellRow], info: BatchInfo, sink) -> None:
        nonlocal completed_cells
        worker_pid = int(info.get("worker_pid", 0))
        if merged_metrics is not None:
            snapshot = info.get("metrics")
            if snapshot:
                merged_metrics.merge(snapshot)
            merged_metrics.inc("campaign/cells", len(batch_rows))
            merged_metrics.inc(f"campaign/worker/{worker_pid}/cells", len(batch_rows))
        if obs_enabled and obs.profile and info.get("profile"):
            profile_snapshots.append(info["profile"])
        if trace_writer is not None:
            _trace_batch(trace_writer, batch_rows, info, named_pids)
        for row in batch_rows:
            cell_id = str(row["cell_id"])
            fresh[cell_id] = row
            completed_cells += 1
            if sink is not None:
                sink.write(json.dumps(row) + "\n")
                sink.flush()
            if quarantine_log is not None and cell_id in to_resolve:
                # A previously quarantined cell just completed: retract its
                # quarantine entry so later resumes run it normally.
                quarantine_log.resolve(cell_id)
                to_resolve.discard(cell_id)
            if on_cell_done is not None:
                on_cell_done(row)
            if events is not None and events.has_listeners(EV_CAMPAIGN_CELL):
                events.emit(
                    EV_CAMPAIGN_CELL,
                    CampaignCellEvent(
                        cell_id=cell_id,
                        scenario=str(row["scenario"]),
                        policy=str(row["policy"]),
                        total_time=float(row["total_time"]),
                        num_lb_calls=int(row["num_lb_calls"]),
                        worker_pid=worker_pid,
                        index=completed_cells,
                        total=len(pending),
                    ),
                )

    def _quarantine_failure(failure: TaskFailure) -> None:
        failed_cells = failure.payload[0]
        error = failure.error
        for cell in failed_cells:
            quarantine_log.append(
                QuarantineEntry(
                    cell_id=cell.cell_id,
                    error_type=error.error_type,
                    message=str(error),
                    traceback=error.worker_traceback or "",
                    attempts=max(int(failure.attempts), 1),
                    run_config=cell.run_config().to_dict(),
                )
            )
            quarantined.append(cell.cell_id)
            _emit_fault(
                "quarantine",
                [cell.cell_id],
                max(failure.attempts - 1, 0),
                error.worker_pid,
                None,
                f"quarantined after {failure.attempts} attempt(s): {error}",
            )

    def _pool_fault(fault) -> None:
        cell_ids = (
            [cell.cell_id for cell in fault.payload[0]]
            if fault.payload is not None
            else []
        )
        _emit_fault(
            fault.kind,
            cell_ids,
            fault.attempt,
            fault.worker_pid,
            fault.retry_in,
            fault.message,
        )

    def _pool_heartbeat(worker_id: int, pid: int, stamp: float, busy: bool) -> None:
        if events is not None and events.has_listeners(EV_WORKER_HEARTBEAT):
            events.emit(
                EV_WORKER_HEARTBEAT,
                WorkerHeartbeatEvent(
                    worker_id=worker_id, pid=pid, timestamp=stamp, busy=busy
                ),
            )

    def _serial_results(payloads: List[TaskPayload]) -> Iterator[object]:
        """In-process dispatch with the same result/failure vocabulary.

        Fail-fast mode re-raises the original exception untouched (the
        historical serial behaviour); quarantine mode mirrors the pool's
        isolate-then-report flow, minus retries -- an in-process failure is
        deterministic by definition.
        """
        queue = deque(payloads)
        drained = {"flag": False}
        drain_hooks.append(lambda: drained.__setitem__("flag", True))
        while queue:
            if drained["flag"]:
                return
            payload = queue.popleft()
            payload_cells = payload[0]
            try:
                value = _supervised_batch_task(payload, 0)
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:
                if quarantine_log is None:
                    raise
                if len(payload_cells) > 1:
                    _emit_fault(
                        "split",
                        [cell.cell_id for cell in payload_cells],
                        0,
                        os.getpid(),
                        None,
                        "splitting failed seed-batch into single cells",
                    )
                    for single in reversed(_subdivide_payload(payload) or []):
                        queue.appendleft(single)
                    continue
                if isinstance(exc, CellError):
                    error = exc
                    if error.worker_traceback is None:
                        error.worker_traceback = traceback_module.format_exc()
                else:
                    error = CellError(
                        f"{type(exc).__name__}: {exc}",
                        cell_ids=(payload_cells[0].cell_id,),
                        attempts=1,
                        error_type=type(exc).__name__,
                        worker_traceback=traceback_module.format_exc(),
                    )
                yield TaskFailure(payload=payload, error=error, attempts=1)
                continue
            yield TaskResult(
                payload=payload, value=value, attempts=1, worker_pid=os.getpid()
            )

    def _pool_results(payloads: List[TaskPayload]) -> Iterator[object]:
        """Supervised multi-process dispatch (crash/hang/retry aware)."""
        pool = SupervisedPool(
            _supervised_batch_task,
            processes=max(1, min(jobs, len(payloads))),
            context=_pool_context(mp_start_method),
            retry=retry_policy,
            task_timeout=task_timeout,
            initializer=_init_worker,
            initargs=(_shippable_scenarios(),),
            subdivide=_subdivide_payload,
            on_fault=_pool_fault,
            on_heartbeat=_pool_heartbeat,
        )
        drain_hooks.append(pool.drain)
        try:
            for item in pool.run(payloads):
                yield item
        finally:
            pool_stats.update(pool.stats)

    if pending:
        # Seed-batches: every (scenario, policy) group runs its repetition
        # seeds as one vectorized replica batch (repro.batch); worker
        # processes parallelize over the groups.
        batches = _seed_batches(pending)
        payloads: List[TaskPayload] = [(batch, worker_obs, chaos) for batch in batches]
        if out is not None:
            out.parent.mkdir(parents=True, exist_ok=True)
            _heal_torn_tail(out)
        sink = out.open("a", encoding="utf-8") if out is not None else None
        # Chaos and deadlines force pool dispatch even serially: an injected
        # crash must kill a worker (never the caller) and an in-process hang
        # cannot be interrupted.
        use_pool = (jobs > 1 and len(batches) > 1) or (
            chaos is not None and chaos.any_enabled
        ) or task_timeout is not None
        install = install_signal_handlers
        if install is None:
            install = threading.current_thread() is threading.main_thread()
        installed: List[tuple] = []
        results = _pool_results(payloads) if use_pool else _serial_results(payloads)
        try:
            if install:
                for signum in (signal.SIGINT, signal.SIGTERM):
                    try:
                        installed.append((signum, signal.signal(signum, _on_signal)))
                    except (ValueError, OSError):  # pragma: no cover - non-main thread
                        pass
            try:
                for item in results:
                    if isinstance(item, TaskResult):
                        _consume(*item.value, sink)
                    elif item.dropped:
                        # Abandoned mid-drain: the cells simply re-run on
                        # the next resume; quarantining them would be wrong.
                        continue
                    elif quarantine_log is None:
                        raise item.error
                    else:
                        _quarantine_failure(item)
            except BaseException:
                # Ctrl-C (second signal), a failing callback or fail-fast:
                # close the dispatch generator *now* -- its finally tears
                # every worker down -- instead of leaving orphaned workers
                # alive until the traceback releases the frame.  The JSONL
                # log already holds every completed row, so a rerun resumes.
                results.close()
                raise
        finally:
            for signum, previous in installed:
                try:
                    signal.signal(signum, previous)
                except (ValueError, OSError):  # pragma: no cover
                    pass
            if sink is not None:
                sink.close()
        if merged_metrics is not None:
            for key, value in pool_stats.items():
                if value:
                    merged_metrics.inc(f"campaign/pool/{key}", value)

    rows: List[CellRow] = []
    for cell in cells:
        row = done.get(cell.cell_id) or fresh.get(cell.cell_id)
        # Quarantined, drained and skipped-quarantined cells have no row.
        if row is not None:
            rows.append(row)
    if trace_writer is not None:
        trace_writer.complete(
            "campaign",
            campaign_start_ns,
            epoch_ns() - campaign_start_ns,
            cat="campaign",
            args={"executed": len(fresh), "skipped": skipped},
        )
    return CampaignRun(
        spec=spec,
        rows=rows,
        executed=len(fresh),
        skipped=skipped,
        out_path=out,
        profile=(
            merge_stage_snapshots(profile_snapshots)
            if obs_enabled and obs.profile
            else None
        ),
        metrics=merged_metrics,
        trace=trace_writer,
        quarantined=tuple(quarantined),
        skipped_quarantined=skipped_quarantined,
        interrupted=interrupt["signals"] > 0,
    )
