"""Aggregation and reporting of campaign results.

Collapses the per-cell JSONL rows of a campaign into one fixed-width table
(same :func:`repro.experiments.common.format_table` rendering as the figure
drivers): one row per (scenario, policy) pair with median/mean statistics
over the repetition seeds, plus each policy's median-time gain over the
``standard`` policy of the same scenario when the grid contains one -- the
campaign-level analogue of the paper's Figure 4a columns.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.common import format_percentage, format_table
from repro.utils.stats import relative_gain

__all__ = [
    "aggregate_rows",
    "format_campaign_report",
]


def _group_rows(
    rows: Sequence[Mapping[str, object]],
) -> "Dict[Tuple[str, str], List[Mapping[str, object]]]":
    groups: Dict[Tuple[str, str], List[Mapping[str, object]]] = {}
    for row in rows:
        key = (str(row["scenario"]), str(row["policy"]))
        groups.setdefault(key, []).append(row)
    return groups


def aggregate_rows(rows: Sequence[Mapping[str, object]]) -> List[Dict[str, object]]:
    """One aggregate table row per (scenario, policy) pair.

    Preserves first-appearance order of scenarios and policies; the gain
    column compares median total times against the scenario's ``standard``
    policy (blank when the scenario has no standard cells).
    """
    groups = _group_rows(rows)
    standard_median: Dict[str, float] = {}
    for (scenario, policy), cells in groups.items():
        if policy == "standard":
            standard_median[scenario] = float(
                np.median([float(c["total_time"]) for c in cells])
            )

    aggregates: List[Dict[str, object]] = []
    for (scenario, policy), cells in groups.items():
        times = np.asarray([float(c["total_time"]) for c in cells])
        lb_calls = np.asarray([float(c["num_lb_calls"]) for c in cells])
        utilization = np.asarray([float(c["mean_utilization"]) for c in cells])
        median_time = float(np.median(times))
        baseline = standard_median.get(scenario)
        gain = (
            format_percentage(relative_gain(baseline, median_time))
            if baseline is not None and policy != "standard"
            else ("-" if policy == "standard" else "")
        )
        aggregates.append(
            {
                "scenario": scenario,
                "policy": policy,
                "runs": len(cells),
                "median time [s]": round(median_time, 5),
                "mean LB calls": round(float(lb_calls.mean()), 2),
                "mean utilization": format_percentage(float(utilization.mean())),
                "gain vs standard": gain,
            }
        )
    return aggregates


def format_campaign_report(
    rows: Sequence[Mapping[str, object]], *, title: Optional[str] = None
) -> str:
    """Render the aggregate table of a campaign's result rows."""
    return format_table(
        aggregate_rows(rows),
        title=title or "Campaign summary -- median over seeds per (scenario, policy)",
    )
