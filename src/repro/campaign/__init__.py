"""Parallel campaign engine over the scenario catalog.

A *campaign* crosses a scenario grid with a policy grid and repetition
seeds, executes every cell on the virtual cluster (serially or across
worker processes), persists one JSON line per completed cell and aggregates
the results into the same fixed-width tables the figure drivers print.  It
is the declarative replacement for writing a bespoke experiment driver per
study:

>>> from repro.campaign import CampaignSpec, PolicySpec, run_campaign
>>> spec = CampaignSpec(
...     scenarios=("synthetic-hotspot", "bursty"),
...     policies=(PolicySpec("standard"), PolicySpec("ulba", alpha=0.4)),
...     num_seeds=2, num_pes=8, columns_per_pe=24, rows=24, iterations=20,
... )
>>> run = run_campaign(spec, jobs=2, out_path="results.jsonl")  # doctest: +SKIP

Key properties:

* **deterministic** -- cell seeds derive from the master seed, the scenario
  name and the repetition index (:meth:`CampaignSpec.cell_seed`), so the
  same spec always produces the same results regardless of worker count,
  execution order or grid edits elsewhere;
* **resumable** -- the JSONL output doubles as the resume log: a rerun
  skips every cell already on disk (:func:`run_campaign` with ``resume``);
* **comparable** -- all policies of one (scenario, seed) pair share the
  same workload instance, mirroring how the paper compares the standard
  method and ULBA on identical erosion runs.

``python -m repro campaign`` is the command-line front end.
"""

from repro.campaign.presets import campaign_for_scale
from repro.campaign.report import aggregate_rows, format_campaign_report
from repro.campaign.runner import (
    CampaignRun,
    load_results,
    run_campaign,
    run_cell,
)
from repro.campaign.spec import CampaignCell, CampaignSpec, PolicySpec

__all__ = [
    "CampaignCell",
    "CampaignRun",
    "CampaignSpec",
    "PolicySpec",
    "aggregate_rows",
    "campaign_for_scale",
    "format_campaign_report",
    "load_results",
    "run_campaign",
    "run_cell",
]
