"""Campaign specifications: scenario grid x policy grid x seeds.

A :class:`CampaignSpec` declares a full study -- which catalog scenarios to
run, under which LB policies, over how many repetition seeds, at what size --
and expands it into a flat list of :class:`CampaignCell` descriptors.  Cells
are plain frozen dataclasses of primitives, so they pickle cheaply into
worker processes, and each cell carries everything needed to execute it in
isolation (the runner never needs the spec back).

Seed derivation is deterministic and *policy-independent*: the cell seed is
derived from the master seed, a stable hash of the scenario name and the
repetition index via :class:`repro.experiments.common.ExperimentSeeds`.  All
policies of one (scenario, repetition) pair therefore see the exact same
workload instance -- the same way the paper compares the standard method and
ULBA on identical erosion runs -- and adding or reordering scenarios or
policies never perturbs the other cells' seeds.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.api.config import (
    DEFAULT_BANDWIDTH,
    DEFAULT_BYTES_PER_LOAD_UNIT,
    DEFAULT_LATENCY,
    ClusterConfig,
    PolicyConfig,
    RunConfig,
    RunnerConfig,
    ScenarioConfig,
    TopologyConfig,
    parse_policy_shorthand,
)
from repro.experiments.common import ExperimentSeeds
from repro.lb.base import TriggerPolicy, WorkloadPolicy
from repro.lb.registry import (
    available_policy_pairs,
    make_policy_pair,
    policy_pair_accepts,
)
from repro.scenarios.base import ScenarioSpec
from repro.scenarios.registry import get_scenario
from repro.utils.validation import check_fraction, check_positive, check_positive_int

__all__ = [
    "CampaignCell",
    "CampaignSpec",
    "PolicySpec",
]


@dataclass(frozen=True)
class PolicySpec:
    """One LB policy of the campaign's policy grid.

    ``kind`` names a pair registered in :mod:`repro.lb.registry` (built-ins:
    ``"standard"`` -- even split + Zhai degradation trigger, ``"ulba"`` --
    fixed-``alpha`` underloading + ULBA-aware trigger, ``"ulba-dynamic"`` --
    runtime-adaptive ``alpha``); custom pairs become usable in campaign
    grids the moment they are registered.
    """

    kind: str = "standard"
    #: ULBA underloading fraction (ignored by the standard policy).
    alpha: float = 0.4

    def __post_init__(self) -> None:
        known = tuple(available_policy_pairs())
        if self.kind not in known:
            raise ValueError(
                f"policy kind must be one of {known}, got {self.kind!r}"
            )
        check_fraction(self.alpha, "alpha")

    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        """Stable human-readable label used in cell ids and report tables.

        The alpha suffix only appears for pairs whose factory takes an
        ``alpha`` (mirroring ``_pair_params``), so two specs that execute
        identically never get distinct labels / cell ids.
        """
        if self.kind == "ulba-dynamic":
            return f"ulba-dynamic(a0={self.alpha:.2f})"
        if policy_pair_accepts(self.kind, "alpha"):
            return f"{self.kind}(a={self.alpha:.2f})"
        return self.kind

    @classmethod
    def parse(cls, text: str) -> "PolicySpec":
        """Parse ``"standard"``, ``"ulba"``, ``"ulba:0.3"``, ``"ulba-dynamic"``."""
        kind, params = parse_policy_shorthand(text)
        return cls(kind=kind, alpha=params.get("alpha", 0.4))

    def _pair_params(self) -> dict:
        # alpha is only forwarded to pair factories that declare it, so
        # custom registered pairs without an alpha knob stay usable in
        # campaign grids.
        if policy_pair_accepts(self.kind, "alpha"):
            return {"alpha": self.alpha}
        return {}

    def make_policies(self) -> Tuple[WorkloadPolicy, TriggerPolicy]:
        """Fresh (workload policy, trigger policy) pair via :mod:`repro.lb.registry`."""
        return make_policy_pair(self.kind, **self._pair_params())

    def as_policy_config(self) -> PolicyConfig:
        """The equivalent :class:`repro.api.config.PolicyConfig` of this spec."""
        return PolicyConfig(name=self.kind, params=self._pair_params())


@dataclass(frozen=True)
class CampaignCell:
    """One fully specified (scenario, policy, seed) execution.

    Self-contained and picklable: the parallel runner ships cells to worker
    processes and rebuilds everything (scenario instance, cluster, policies)
    from the cell alone.
    """

    #: Stable identifier used for JSONL resume bookkeeping.
    cell_id: str
    #: Catalog name of the scenario.
    scenario: str
    #: Policy of this cell.
    policy: PolicySpec
    #: Repetition index within the campaign (0-based).
    seed_index: int
    #: Derived integer seed of the workload instance.
    seed: int
    num_pes: int
    columns_per_pe: int
    rows: int
    iterations: int
    latency: float
    bandwidth: float
    bytes_per_load_unit: float
    pe_speed: float

    def scenario_spec(self) -> ScenarioSpec:
        """The :class:`ScenarioSpec` this cell builds its workload from."""
        return ScenarioSpec(
            num_pes=self.num_pes,
            columns_per_pe=self.columns_per_pe,
            rows=self.rows,
            iterations=self.iterations,
            seed=self.seed,
        )

    def run_config(self) -> RunConfig:
        """The declarative :class:`repro.api.config.RunConfig` of this cell.

        This is what the campaign runner hands to
        :meth:`repro.api.session.Session.from_config`; it is also the
        shippable form of the cell (JSON round-trippable), so a cell can be
        re-executed anywhere without the spec.
        """
        return RunConfig(
            cluster=ClusterConfig(
                num_pes=self.num_pes,
                pe_speed=self.pe_speed,
                latency=self.latency,
                bandwidth=self.bandwidth,
            ),
            topology=TopologyConfig(),
            policy=self.policy.as_policy_config(),
            scenario=ScenarioConfig(
                name=self.scenario,
                columns_per_pe=self.columns_per_pe,
                rows=self.rows,
                iterations=self.iterations,
                seed=self.seed,
            ),
            runner=RunnerConfig(bytes_per_load_unit=self.bytes_per_load_unit),
        )


def _scenario_key(name: str) -> int:
    """Stable integer key of a scenario name (process-independent)."""
    return zlib.crc32(name.encode("utf-8"))


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative description of one campaign grid.

    The grid is the cross product ``scenarios x policies x num_seeds``; every
    cell runs at the same size (``num_pes`` / ``columns_per_pe`` / ``rows`` /
    ``iterations``) and on the same interconnect model, so aggregate tables
    compare policies and scenarios, not sizes.

    Example
    -------
    >>> from repro.campaign.spec import CampaignSpec, PolicySpec
    >>> spec = CampaignSpec(
    ...     scenarios=("synthetic-hotspot",),
    ...     policies=(PolicySpec("standard"), PolicySpec("ulba", alpha=0.4)),
    ...     num_seeds=3,
    ... )
    >>> spec.num_cells
    6
    >>> [cell.seed_index for cell in spec.cells()][:3]
    [0, 1, 2]
    """

    #: Campaign name (used in report titles and default output file names).
    name: str = "campaign"
    #: Catalog names of the scenarios to run.
    scenarios: Tuple[str, ...] = ("synthetic-hotspot", "bursty", "sinusoidal-drift")
    #: Policy grid.
    policies: Tuple[PolicySpec, ...] = (PolicySpec("standard"), PolicySpec("ulba"))
    #: Repetition seeds per (scenario, policy) pair.
    num_seeds: int = 2
    num_pes: int = 16
    columns_per_pe: int = 48
    rows: int = 48
    iterations: int = 40
    latency: float = DEFAULT_LATENCY
    bandwidth: float = DEFAULT_BANDWIDTH
    bytes_per_load_unit: float = DEFAULT_BYTES_PER_LOAD_UNIT
    pe_speed: float = 1.0e9
    #: Master seed every cell seed is derived from.
    master_seed: int = 0

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ValueError("a campaign needs at least one scenario")
        if len(set(self.scenarios)) != len(self.scenarios):
            raise ValueError(f"duplicate scenario names in {self.scenarios}")
        if not self.policies:
            raise ValueError("a campaign needs at least one policy")
        if len({p.label for p in self.policies}) != len(self.policies):
            raise ValueError("duplicate policy labels in the policy grid")
        check_positive_int(self.num_seeds, "num_seeds")
        check_positive_int(self.num_pes, "num_pes")
        check_positive_int(self.columns_per_pe, "columns_per_pe")
        check_positive_int(self.rows, "rows")
        check_positive_int(self.iterations, "iterations")
        check_positive(self.bandwidth, "bandwidth")
        check_positive(self.pe_speed, "pe_speed")

    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        """Total number of grid cells."""
        return len(self.scenarios) * len(self.policies) * self.num_seeds

    def validate_scenarios(self) -> None:
        """Resolve every scenario name now (raises KeyError on typos)."""
        for name in self.scenarios:
            get_scenario(name)

    def cell_seed(self, scenario: str, seed_index: int) -> int:
        """Deterministic workload seed of one (scenario, repetition) pair.

        Independent of the policy and of the position of the scenario in
        the grid, so every policy sees the same workload instance and
        editing the grid never reseeds unrelated cells.
        """
        rng = ExperimentSeeds(self.master_seed).rng_for(
            _scenario_key(scenario), int(seed_index)
        )
        return int(rng.integers(0, 2**31 - 1))

    def _cell_id(self, scenario: str, policy: PolicySpec, seed_index: int) -> str:
        # The master seed is part of the id so rerunning the same grid with a
        # different --seed never resumes from the other seed's results.
        size = f"p{self.num_pes}c{self.columns_per_pe}r{self.rows}i{self.iterations}"
        return f"{scenario}|{policy.label}|{size}|seed{seed_index}|m{self.master_seed}"

    def cells(self, *, name_filter: Optional[str] = None) -> List[CampaignCell]:
        """Expand the grid into executable cells (scenario-major order).

        ``name_filter`` keeps only cells whose id contains the substring --
        the engine behind the CLI's ``--filter``.
        """
        self.validate_scenarios()
        cells: List[CampaignCell] = []
        for scenario in self.scenarios:
            for policy in self.policies:
                for seed_index in range(self.num_seeds):
                    cell_id = self._cell_id(scenario, policy, seed_index)
                    if name_filter and name_filter not in cell_id:
                        continue
                    cells.append(
                        CampaignCell(
                            cell_id=cell_id,
                            scenario=scenario,
                            policy=policy,
                            seed_index=seed_index,
                            seed=self.cell_seed(scenario, seed_index),
                            num_pes=self.num_pes,
                            columns_per_pe=self.columns_per_pe,
                            rows=self.rows,
                            iterations=self.iterations,
                            latency=self.latency,
                            bandwidth=self.bandwidth,
                            bytes_per_load_unit=self.bytes_per_load_unit,
                            pe_speed=self.pe_speed,
                        )
                    )
        return cells
