"""Statistical helpers shared across the library.

These helpers implement the small amount of statistics the paper relies on:

* **z-scores** -- Algorithm 1 flags a processing element as *overloading*
  when the z-score of its workload increase rate within the cluster-wide
  distribution exceeds a threshold (3.0 in the paper).
* **rolling medians** -- the application skeleton smooths iteration times
  with the median over the last three iterations before accumulating the
  performance degradation.
* **box-plot and histogram summaries** -- Figures 2 and 3 report
  distributions of gains; the experiment drivers reduce raw samples to the
  same summaries so the benchmark harness can print paper-comparable rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "zscore",
    "zscores",
    "rolling_median",
    "relative_gain",
    "mean_confidence_interval",
    "BoxPlotSummary",
    "box_plot_summary",
    "HistogramSummary",
    "histogram_summary",
    "weighted_imbalance",
]


def _normal_quantile(p: float) -> float:
    """Standard-normal quantile by bisection on ``math.erf`` (no SciPy).

    Accurate to ~1e-12 over the confidence levels used here; the classic
    values come out exactly (``_normal_quantile(0.975)`` ~ 1.95996).
    """
    import math

    if not 0.0 < p < 1.0:
        raise ValueError(f"p must lie in (0, 1), got {p}")
    lo, hi = -10.0, 10.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if 0.5 * (1.0 + math.erf(mid / math.sqrt(2.0))) < p:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def mean_confidence_interval(
    values: Sequence[float], *, confidence: float = 0.95
) -> Tuple[float, float]:
    """Mean and CI half-width of ``values`` (normal approximation).

    Returns ``(mean, half_width)`` where the interval is ``mean +/-
    half_width`` at the requested ``confidence`` level, using the
    sample standard deviation (``ddof=1``) and the normal quantile --
    the replica counts of batched runs (tens of replicas) make the
    normal approximation adequate for reporting, and it keeps the
    library dependency-free.  Fewer than two samples yield a zero
    half-width.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("values must not be empty")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must lie in (0, 1), got {confidence}")
    mean = float(arr.mean())
    if arr.size < 2:
        return mean, 0.0
    sem = float(arr.std(ddof=1)) / float(np.sqrt(arr.size))
    z = _normal_quantile(0.5 + confidence / 2.0)
    return mean, z * sem


def zscore(value: float, population: Sequence[float]) -> float:
    """Return the z-score of ``value`` within ``population``.

    If the population has zero standard deviation the z-score is defined as
    0.0 (no element can be an outlier of a constant distribution), which is
    the behaviour Algorithm 1 needs right after a perfectly balanced step.
    """
    pop = np.asarray(list(population), dtype=float)
    if pop.size == 0:
        raise ValueError("population must not be empty")
    mean = float(pop.mean())
    std = float(pop.std())
    if std == 0.0:
        return 0.0
    return (float(value) - mean) / std


def zscores(population: Sequence[float]) -> np.ndarray:
    """Vectorised z-scores of every element of ``population``."""
    pop = np.asarray(list(population), dtype=float)
    if pop.size == 0:
        raise ValueError("population must not be empty")
    std = float(pop.std())
    if std == 0.0:
        return np.zeros_like(pop)
    return (pop - pop.mean()) / std


def rolling_median(values: Sequence[float], window: int = 3) -> float:
    """Median of the last ``window`` entries of ``values``.

    Mirrors line 14 of Algorithm 1 (median of the times of the current and
    the two previous iterations).  If fewer than ``window`` samples exist the
    median of the available ones is returned.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    vals = list(values)[-window:]  # repro: noqa[FLOW-HOT] -- O(window) copy of the tracker's bounded window (the paper uses window=3); the scalar fast paths below avoid any array round-trip
    if not vals:
        raise ValueError("values must not be empty")
    # Scalar fast paths for the tiny windows of the runner's hot loop (the
    # paper uses window=3); identical values to np.median, without the
    # array round-trip.
    n = len(vals)
    if n == 1:
        return float(vals[0])
    if n == 2:
        return (float(vals[0]) + float(vals[1])) / 2.0
    if n == 3:
        a, b, c = float(vals[0]), float(vals[1]), float(vals[2])
        return max(min(a, b), min(max(a, b), c))
    return float(np.median(np.asarray(vals, dtype=float)))  # repro: noqa[FLOW-HOT] -- reached only for window > 3; the runner's hot loop uses the paper's window=3 scalar fast paths above


def relative_gain(baseline: float, candidate: float) -> float:
    """Relative gain of ``candidate`` over ``baseline``.

    Positive values mean the candidate is *faster* (smaller time).  This is
    the quantity plotted in Figures 2 and 3:
    ``gain = (baseline - candidate) / baseline``.
    """
    if baseline == 0.0:
        raise ZeroDivisionError("baseline time must be non-zero")
    return (baseline - candidate) / baseline


def weighted_imbalance(loads: Sequence[float]) -> float:
    """Classical load-imbalance metric ``max/mean - 1``.

    Returns 0.0 for a perfectly balanced load vector and grows with the
    excess load of the most loaded processing element.
    """
    arr = np.asarray(list(loads), dtype=float)
    if arr.size == 0:
        raise ValueError("loads must not be empty")
    mean = float(arr.mean())
    if mean == 0.0:
        return 0.0
    # The clamp guards against mean rounding slightly above max for
    # perfectly balanced loads (e.g. [x, x, x] with sum/3 > x by one ulp).
    return max(0.0, float(arr.max()) / mean - 1.0)


@dataclass(frozen=True)
class BoxPlotSummary:
    """Five-number summary (plus mean) of a sample, as used by Figure 3."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float
    count: int

    def as_row(self) -> Tuple[float, float, float, float, float, float, int]:
        """Return the summary as a plain tuple (useful for table printing)."""
        return (
            self.minimum,
            self.q1,
            self.median,
            self.q3,
            self.maximum,
            self.mean,
            self.count,
        )


def box_plot_summary(samples: Sequence[float]) -> BoxPlotSummary:
    """Compute the :class:`BoxPlotSummary` of ``samples``."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("samples must not be empty")
    q1, med, q3 = np.percentile(arr, [25.0, 50.0, 75.0])
    minimum = float(arr.min())
    maximum = float(arr.max())
    # The clamp guards against pairwise summation rounding the mean one ulp
    # outside [min, max] for near-constant samples (same class of artifact
    # as the clamp in weighted_imbalance).
    mean = min(max(float(arr.mean()), minimum), maximum)
    return BoxPlotSummary(
        minimum=minimum,
        q1=float(q1),
        median=float(med),
        q3=float(q3),
        maximum=maximum,
        mean=mean,
        count=int(arr.size),
    )


@dataclass(frozen=True)
class HistogramSummary:
    """Histogram of a sample, as used by Figure 2.

    Attributes
    ----------
    edges:
        Bin edges (length ``len(densities) + 1``).
    densities:
        Probability mass per bin (sums to 1 over all bins).
    mean, minimum, maximum:
        Moments of the raw sample, reported in the paper's text
        (average/best/worst gain).
    """

    edges: Tuple[float, ...]
    densities: Tuple[float, ...]
    mean: float
    minimum: float
    maximum: float
    count: int
    below_zero_fraction: float = field(default=0.0)

    def as_series(self) -> List[Tuple[float, float]]:
        """Return ``(bin_center, probability)`` pairs."""
        centers = 0.5 * (np.asarray(self.edges[:-1]) + np.asarray(self.edges[1:]))
        return list(zip(centers.tolist(), list(self.densities)))


def histogram_summary(samples: Sequence[float], bins: int = 20) -> HistogramSummary:
    """Compute a probability histogram of ``samples`` with ``bins`` bins."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("samples must not be empty")
    if bins <= 0:
        raise ValueError(f"bins must be positive, got {bins}")
    counts, edges = np.histogram(arr, bins=bins)
    total = counts.sum()
    densities = counts / total if total > 0 else counts.astype(float)
    return HistogramSummary(
        edges=tuple(float(e) for e in edges),
        densities=tuple(float(d) for d in densities),
        mean=float(arr.mean()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        count=int(arr.size),
        below_zero_fraction=float((arr < 0.0).mean()),
    )
