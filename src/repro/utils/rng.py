"""Reproducible random-number-generator management.

Every stochastic component of the library (the Table II parameter sampler,
the simulated-annealing engine, the erosion dynamics, the gossip protocol)
receives a :class:`numpy.random.Generator`.  The helpers here normalise the
many ways a caller may specify randomness (``None``, an integer seed, an
existing generator) and provide deterministic derivation of independent
child generators, which is essential for running per-PE stochastic code in
a reproducible SPMD simulation.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, TypeVar, Union

import numpy as np

__all__ = ["SeedLike", "ensure_rng", "derive_rng", "spawn_rngs"]

#: Accepted ways of specifying a source of randomness.
SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]

T = TypeVar("T")


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, a
        :class:`numpy.random.SeedSequence`, or an existing generator
        (returned unchanged).

    Returns
    -------
    numpy.random.Generator
        A generator usable by library components.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be None, an int, a SeedSequence or a Generator, got {type(seed)!r}"
    )


def derive_rng(rng: np.random.Generator, *keys: int) -> np.random.Generator:
    """Derive an independent child generator from ``rng`` and integer keys.

    The derivation is deterministic: the same parent state and keys always
    produce the same child stream.  This is used to give each processing
    element of the virtual cluster its own stream (``derive_rng(rng, rank)``)
    or each experiment repetition its own stream without consuming the parent
    stream in an order-dependent way.
    """
    if not keys:
        raise ValueError("derive_rng requires at least one integer key")
    # Use the parent bit generator's seed sequence when available so that the
    # parent stream itself is left untouched.
    parent_ss = getattr(rng.bit_generator, "seed_seq", None)
    if parent_ss is None:  # pragma: no cover - defensive, numpy always sets it
        parent_ss = np.random.SeedSequence(int(rng.integers(0, 2**63 - 1)))
    child = np.random.SeedSequence(
        entropy=parent_ss.entropy,
        spawn_key=tuple(parent_ss.spawn_key) + tuple(int(k) for k in keys),
    )
    return np.random.default_rng(child)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Create ``count`` independent generators from a single seed."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    base = ensure_rng(seed)
    return [derive_rng(base, i) for i in range(count)]


def sample_from(
    rng: np.random.Generator, values: Sequence[T], size: Optional[int] = None
) -> Union[T, List[T]]:
    """Uniformly sample from a finite sequence of ``values``.

    Thin wrapper around :meth:`numpy.random.Generator.choice` that accepts
    arbitrary Python objects without converting them to arrays of objects in
    surprising ways.
    """
    values = list(values)
    if not values:
        raise ValueError("cannot sample from an empty sequence")
    if size is None:
        return values[int(rng.integers(0, len(values)))]
    indices = rng.integers(0, len(values), size=size)
    return [values[int(i)] for i in indices]


def shuffle_indices(rng: np.random.Generator, n: int) -> np.ndarray:
    """Return a random permutation of ``range(n)``."""
    return rng.permutation(n)


def iter_seeds(seed: SeedLike, count: int) -> Iterable[int]:
    """Yield ``count`` deterministic integer seeds derived from ``seed``."""
    base = ensure_rng(seed)
    for i in range(count):
        yield int(derive_rng(base, i).integers(0, 2**31 - 1))
