"""Atomic file-writing helpers for result artifacts.

Campaign artifacts (metrics JSON, Chrome traces, benchmark records) used to
be written with a plain truncate-and-write: a crash or SIGKILL mid-write
left a torn, unparseable file *and* destroyed the previous good version.
These helpers write to a temporary file in the target directory, fsync it
and :func:`os.replace` it over the destination -- on POSIX the rename is
atomic, so readers only ever observe the old complete file or the new
complete file, never a torn intermediate.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Union

__all__ = ["atomic_write_json", "atomic_write_text"]


def atomic_write_text(
    path: Union[str, Path], text: str, *, encoding: str = "utf-8"
) -> Path:
    """Atomically replace ``path`` with ``text``; returns the path.

    The temporary file lives in the destination directory (``os.replace``
    across filesystems is not atomic) and is removed on any failure, so a
    crashed write leaves the previous file untouched and no debris behind.
    Parent directories are created as needed.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_json(
    path: Union[str, Path], payload: object, *, indent: int = 2
) -> Path:
    """Atomically replace ``path`` with ``payload`` serialized as JSON.

    A trailing newline is appended (artifact files are line-tool friendly).
    """
    return atomic_write_text(path, json.dumps(payload, indent=indent) + "\n")
