"""Source-level markers the static analyses recognise.

Markers are deliberately inert at runtime -- they exist so invariants can
be declared where the code lives and checked by ``repro lint`` instead of
by convention.
"""

from __future__ import annotations

from typing import Callable, TypeVar

__all__ = ["hot_path"]

F = TypeVar("F", bound=Callable[..., object])


def hot_path(fn: F) -> F:
    """Declare ``fn`` audited allocation-free for hot-loop purposes.

    The transitive purity analysis behind ``FLOW-HOT`` treats a decorated
    function as a trusted leaf: its body and callees are not descended
    into.  Apply it only after profiling or reading the body -- the
    decorator is an assertion, not a request.
    """
    setattr(fn, "__repro_hot_path__", True)
    return fn
