"""Argument-validation helpers with uniform error messages.

Model code in :mod:`repro.core` and the simulator in :mod:`repro.simcluster`
validate their inputs aggressively: the analytical formulas of the paper are
only meaningful on a constrained parameter domain (e.g. ``0 <= alpha <= 1``,
``0 < N < P``) and silent acceptance of out-of-domain values would produce
plausible-looking but wrong reproductions.
"""

from __future__ import annotations

from numbers import Integral, Real
from typing import Optional

__all__ = [
    "check_positive",
    "check_positive_int",
    "check_non_negative",
    "check_fraction",
    "check_in_range",
]


def check_positive(value: float, name: str) -> float:
    """Ensure ``value`` is a strictly positive real number and return it."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return float(value)


def check_non_negative(value: float, name: str) -> float:
    """Ensure ``value`` is a non-negative real number and return it."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def check_positive_int(value: int, name: str) -> int:
    """Ensure ``value`` is a strictly positive integer and return it."""
    if isinstance(value, bool) or not isinstance(value, Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return int(value)


def check_non_negative_int(value: int, name: str) -> int:
    """Ensure ``value`` is a non-negative integer and return it."""
    if isinstance(value, bool) or not isinstance(value, Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return int(value)


def check_fraction(value: float, name: str, *, inclusive: bool = True) -> float:
    """Ensure ``value`` lies in ``[0, 1]`` (or ``(0, 1)`` if not inclusive)."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be within [0, 1], got {value!r}")
    else:
        if not 0.0 < value < 1.0:
            raise ValueError(f"{name} must be within (0, 1), got {value!r}")
    return float(value)


def check_in_range(
    value: float,
    name: str,
    *,
    low: Optional[float] = None,
    high: Optional[float] = None,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
) -> float:
    """Ensure ``value`` lies in the given (possibly half-open) interval."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if low is not None:
        if low_inclusive and value < low:
            raise ValueError(f"{name} must be >= {low}, got {value!r}")
        if not low_inclusive and value <= low:
            raise ValueError(f"{name} must be > {low}, got {value!r}")
    if high is not None:
        if high_inclusive and value > high:
            raise ValueError(f"{name} must be <= {high}, got {value!r}")
        if not high_inclusive and value >= high:
            raise ValueError(f"{name} must be < {high}, got {value!r}")
    return float(value)
