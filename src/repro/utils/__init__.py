"""Shared utilities for the ULBA reproduction library.

This package hosts small, dependency-free helpers used across the whole
library:

* :mod:`repro.utils.io` -- atomic artifact writes (temp file + rename).
* :mod:`repro.utils.markers` -- inert source markers recognised by the
  static analyses (``@hot_path``).
* :mod:`repro.utils.rng` -- reproducible random-number-generator management.
* :mod:`repro.utils.stats` -- statistical helpers (z-scores, robust medians,
  box-plot summaries, histogram binning) shared by the load-balancing
  framework and the experiment drivers.
* :mod:`repro.utils.validation` -- argument validation helpers that raise
  uniform, descriptive errors.
"""

from repro.utils.io import atomic_write_json, atomic_write_text
from repro.utils.markers import hot_path
from repro.utils.rng import derive_rng, ensure_rng, spawn_rngs
from repro.utils.stats import (
    BoxPlotSummary,
    HistogramSummary,
    box_plot_summary,
    histogram_summary,
    relative_gain,
    rolling_median,
    zscore,
    zscores,
)
from repro.utils.validation import (
    check_fraction,
    check_in_range,
    check_positive,
    check_positive_int,
)

__all__ = [
    "BoxPlotSummary",
    "HistogramSummary",
    "atomic_write_json",
    "atomic_write_text",
    "box_plot_summary",
    "check_fraction",
    "check_in_range",
    "check_positive",
    "check_positive_int",
    "derive_rng",
    "ensure_rng",
    "histogram_summary",
    "hot_path",
    "relative_gain",
    "rolling_median",
    "spawn_rngs",
    "zscore",
    "zscores",
]
