"""Adaptive load-balancing triggering policies.

The paper's numerical study triggers the load balancer with the approach of
Zhai et al.: the runtime accumulates, iteration after iteration, the exact
performance degradation with respect to a reference iteration (the one right
after the last LB call) and invokes the balancer when the accumulated
degradation exceeds the average LB cost -- plus, for ULBA, the underloading
overhead (Eq. 9/11).  This module also provides the simpler policies used as
baselines and in tests: never balance, balance periodically, and balance at
Menon's closed-form interval.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.lb.base import LBContext, TriggerPolicy
from repro.lb.wir import LazyWIRViews, OverloadDetector
from repro.utils.validation import check_fraction, check_positive_int

__all__ = [
    "NeverTrigger",
    "PeriodicTrigger",
    "MenonIntervalTrigger",
    "DegradationTrigger",
    "ULBADegradationTrigger",
]


class NeverTrigger(TriggerPolicy):
    """Static partitioning: the load balancer is never invoked."""

    name = "never"

    def should_balance(self, context: LBContext) -> bool:
        return False


class PeriodicTrigger(TriggerPolicy):
    """Invoke the load balancer every ``period`` iterations.

    The paper describes this as the straightforward (but poorly adaptive)
    strategy, e.g. "call the load balancer every 1000 iterations".
    """

    name = "periodic"

    def __init__(self, period: int) -> None:
        check_positive_int(period, "period")
        self.period = period

    def should_balance(self, context: LBContext) -> bool:
        since = context.iterations_since_lb
        return since > 0 and since % self.period == 0


class MenonIntervalTrigger(TriggerPolicy):
    """Invoke the load balancer every ``tau = sqrt(2 C omega / m_hat)`` iterations.

    ``m_hat`` (the growth rate of the most loaded PE's excess, in FLOP per
    iteration) is estimated online from the WIR database: it is the gap
    between the largest known WIR and the mean WIR.  The LB cost ``C`` is the
    runtime's current estimate (``context.average_lb_cost``).
    """

    name = "menon-interval"

    def __init__(self, *, minimum_interval: int = 1) -> None:
        check_positive_int(minimum_interval, "minimum_interval")
        self.minimum_interval = minimum_interval

    def _estimate_tau(self, context: LBContext) -> float:
        view = context.wir_view_of(0)
        if not view:
            return math.inf
        rates = list(view.values())
        mean_rate = sum(rates) / len(rates)
        m_hat = max(rates) - mean_rate
        if m_hat <= 0.0 or context.average_lb_cost <= 0.0:
            return math.inf
        return math.sqrt(2.0 * context.average_lb_cost * context.pe_speed / m_hat)

    def should_balance(self, context: LBContext) -> bool:
        tau = self._estimate_tau(context)
        if math.isinf(tau):
            return False
        interval = max(self.minimum_interval, int(math.floor(tau)))
        return context.iterations_since_lb >= interval


class DegradationTrigger(TriggerPolicy):
    """Zhai-style trigger: balance when degradation exceeds the LB cost.

    The runtime accumulates ``sum_i (t_i - t_ref)`` where ``t_ref`` is the
    (median-smoothed) iteration time right after the last LB step; the
    balancer runs when that accumulation reaches the average LB cost.  The
    accumulation itself lives in :class:`repro.runtime.degradation.DegradationTracker`;
    this policy only compares it to the threshold.
    """

    name = "degradation"

    def __init__(self, *, cost_margin: float = 1.0) -> None:
        if cost_margin <= 0.0:
            raise ValueError(f"cost_margin must be > 0, got {cost_margin}")
        self.cost_margin = cost_margin

    def threshold(self, context: LBContext) -> float:
        """Degradation level (seconds) above which the balancer should run."""
        return self.cost_margin * context.average_lb_cost

    def should_balance(self, context: LBContext) -> bool:
        if context.iterations_since_lb <= 0:
            return False
        return context.accumulated_degradation >= self.threshold(context)


class ULBADegradationTrigger(DegradationTrigger):
    """ULBA-aware degradation trigger (Eq. 9).

    Identical to :class:`DegradationTrigger` but the threshold additionally
    includes the ULBA overhead (Eq. 11): the extra work a non-overloading PE
    will absorb at the next LB step,
    ``alpha N / (P - N) * Wtot / (omega P)``, where ``N`` is the number of
    currently overloading PEs according to the WIR database.
    """

    name = "ulba-degradation"

    def __init__(
        self,
        alpha: float,
        *,
        detector: Optional[OverloadDetector] = None,
        cost_margin: float = 1.0,
    ) -> None:
        super().__init__(cost_margin=cost_margin)
        check_fraction(alpha, "alpha")
        self.alpha = alpha
        self.detector = detector or OverloadDetector()

    def _estimate_overhead(self, context: LBContext) -> float:
        num_pes = context.num_pes
        # Only the *number* of overloading PEs enters Eq. 11, so the fast
        # path counts z-score exceedances on rank 0's compacted view array
        # (same statistics, same comparisons as the dict-based ranks list);
        # this runs every iteration, not just at LB steps.
        views = context.wir_views
        if (
            isinstance(views, LazyWIRViews)
            and type(self.detector) is OverloadDetector
        ):
            rates = views.known_values(0)
            if rates.size == 0:
                return 0.0
            n = self.detector.overloading_count(rates)
        else:
            view = context.wir_view_of(0)
            if not view:
                return 0.0
            n = len(self.detector.overloading_ranks(view))
        if n == 0 or n >= num_pes:
            return 0.0
        return (
            self.alpha
            * n
            / (num_pes - n)
            * context.total_workload
            / (context.pe_speed * num_pes)
        )

    def threshold(self, context: LBContext) -> float:
        base = super().threshold(context)
        return base + self._estimate_overhead(context)
