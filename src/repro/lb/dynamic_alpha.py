"""Runtime-adaptive choice of the ULBA underloading fraction ``alpha``.

The paper treats ``alpha`` as a user-defined constant and repeatedly notes
that its best value depends on runtime conditions -- in particular on the
fraction of overloading PEs, because the ULBA overhead grows like
``alpha * N / (P - N)`` (Eq. 11) -- and lists the dynamic adjustment of
``alpha`` as future work (Sections III-A, IV-B and V).

This module implements that extension.  :class:`DynamicAlphaULBAPolicy` is a
drop-in replacement for :class:`repro.lb.ulba.ULBAPolicy` that, at every LB
step, *derives* ``alpha`` instead of using a constant:

1. the z-score rule identifies the ``N`` overloading PEs, exactly as in the
   fixed-``alpha`` policy;
2. the runtime state is condensed into an
   :class:`~repro.core.parameters.ApplicationParameters` instance: ``Wtot``
   from the current PE workloads, the rates ``a`` / ``m`` from the replicated
   WIR database, the LB cost ``C`` from the runtime's running estimate;
3. the paper's own analytical model (Eq. 4 with Eq. 5 in Eq. 3, evaluated
   over the ``sigma_plus`` schedule) is minimised over a small ``alpha``
   grid, and the winning value is applied to the overloading PEs.

The same 50 %-majority guard as the fixed policy applies.  When the runtime
estimates are too degenerate to build a model (no LB cost estimate yet, no
imbalance, a majority overloading), the policy falls back to a configurable
fixed ``alpha``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.gains import best_alpha_for_instance
from repro.core.intervals import menon_tau
from repro.core.parameters import ApplicationParameters
from repro.lb.base import LBContext, LBDecision, WorkloadPolicy
from repro.lb.wir import OverloadDetector
from repro.partitioning.weighted import target_shares_from_alphas
from repro.utils.validation import check_fraction, check_positive, check_positive_int

__all__ = ["AlphaChoice", "DynamicAlphaULBAPolicy"]


@dataclass(frozen=True)
class AlphaChoice:
    """Diagnostic record of one runtime ``alpha`` selection."""

    #: Iteration at which the choice was made.
    iteration: int
    #: The selected underloading fraction.
    alpha: float
    #: Number of overloading PEs at the decision point.
    num_overloading: int
    #: The analytical instance the choice was derived from (None when the
    #: policy fell back to the fixed default).
    model: Optional[ApplicationParameters]
    #: True when the fixed fallback value was used.
    used_fallback: bool


class DynamicAlphaULBAPolicy(WorkloadPolicy):
    """ULBA workload policy with model-driven, per-step ``alpha`` selection.

    Parameters
    ----------
    strategy:
        ``"interval"`` (default) sizes ``alpha`` so that the catch-up length
        ``sigma_minus(alpha)`` matches one Menon LB interval -- a
        self-limiting rule that never removes more work than the predicted
        growth can refill before the next natural LB point.  ``"model"``
        instead minimises the analytical run-time model (Eq. 4/5) over
        ``alpha_grid``; it is the more aggressive choice and assumes the
        growth persists for the whole remaining run.
    fallback_alpha:
        Value used when the runtime estimates cannot support a model-based
        choice (e.g. before the first LB cost measurement).  0.4 matches the
        constant the paper uses in its experiments.
    alpha_grid:
        Candidate values evaluated at each LB step by the ``"model"``
        strategy; a coarse grid keeps the per-step cost negligible (the model
        evaluation is closed-form).
    horizon:
        Upper bound, in iterations, on the planning horizon of the
        ``"model"`` strategy (clamped to the remaining iterations when the
        runtime provides them).  The default of 100 matches the paper's
        ``gamma``.
    max_alpha:
        Hard cap on any selected ``alpha``.
    interval_factor:
        Number of Menon intervals the ``"interval"`` strategy aims to bridge
        with one underloading step (2 by default: the overloading PEs should
        catch back up to the average after roughly two natural LB intervals,
        i.e. one LB invocation is skipped).
    detector:
        Overload detector (z-score >= 3 by default, as in the paper).
    majority_guard:
        Fraction of PEs above which underloading is disabled for the step.
    """

    name = "ulba-dynamic-alpha"

    def __init__(
        self,
        *,
        strategy: str = "interval",
        fallback_alpha: float = 0.4,
        alpha_grid: Optional[Sequence[float]] = None,
        horizon: int = 100,
        max_alpha: float = 0.9,
        interval_factor: float = 2.0,
        detector: Optional[OverloadDetector] = None,
        majority_guard: float = 0.5,
    ) -> None:
        if strategy not in ("interval", "model"):
            raise ValueError(
                f"strategy must be 'interval' or 'model', got {strategy!r}"
            )
        check_fraction(fallback_alpha, "fallback_alpha")
        check_fraction(max_alpha, "max_alpha")
        check_fraction(majority_guard, "majority_guard")
        check_positive_int(horizon, "horizon")
        check_positive(interval_factor, "interval_factor")
        if alpha_grid is None:
            grid = np.linspace(0.0, 0.9, 10)
        else:
            grid = np.asarray(list(alpha_grid), dtype=float)
            if grid.size == 0:
                raise ValueError("alpha_grid must not be empty")
            if np.any((grid < 0.0) | (grid > 1.0)):
                raise ValueError("alpha_grid values must lie within [0, 1]")
        self.strategy = strategy
        self.fallback_alpha = fallback_alpha
        self.alpha_grid: Tuple[float, ...] = tuple(float(a) for a in grid)
        self.horizon = horizon
        self.max_alpha = max_alpha
        self.interval_factor = interval_factor
        self.detector = detector or OverloadDetector()
        self.majority_guard = majority_guard
        #: History of runtime alpha selections (one entry per LB step where
        #: at least one PE was overloading).
        self.choices: List[AlphaChoice] = []

    # ------------------------------------------------------------------
    # Runtime -> analytical-model estimation.
    # ------------------------------------------------------------------
    def _estimate_model(
        self, context: LBContext, overloading: Sequence[int]
    ) -> Optional[ApplicationParameters]:
        """Condense the runtime state into an analytical instance.

        Returns ``None`` when the estimates are degenerate (no imbalance
        rate, no workload, or no LB cost measurement yet).
        """
        num_pes = context.num_pes
        num_over = len(overloading)
        if num_over == 0 or num_over >= num_pes:
            return None
        total_workload = context.total_workload
        if total_workload <= 0.0 or context.average_lb_cost <= 0.0:
            return None

        view = context.wir_view_of(0) or {}
        if not view:
            return None
        over_set = set(overloading)
        over_rates = [rate for rank, rate in view.items() if rank in over_set]
        other_rates = [rate for rank, rate in view.items() if rank not in over_set]
        if not over_rates or not other_rates:
            return None

        # Per-PE uniform rate `a` and extra rate `m` of the overloading PEs
        # (clamped at zero: a transient negative estimate must not produce an
        # invalid analytical instance).
        a = max(0.0, float(np.mean(other_rates)))
        m = float(np.mean(over_rates)) - a
        if m <= 0.0:
            return None

        # Plan only over the remaining run, if the runtime told us how long
        # that is: assuming the growth persists further than the application
        # actually runs systematically overestimates the value of aggressive
        # underloading.
        horizon = self.horizon
        remaining = context.remaining_iterations
        if remaining is not None:
            horizon = max(1, min(horizon, remaining))

        return ApplicationParameters(
            num_pes=num_pes,
            num_overloading=num_over,
            iterations=horizon,
            initial_workload=total_workload,
            uniform_rate=a,
            overload_rate=m,
            alpha=self.fallback_alpha,
            pe_speed=context.pe_speed,
            lb_cost=context.average_lb_cost,
        )

    def _interval_matched_alpha(self, model: ApplicationParameters, context: LBContext) -> float:
        """``alpha`` whose catch-up length matches one natural LB interval.

        Underloading is only useful while the overloading PEs are climbing
        back to the average (Eq. 8); removing more work than the predicted
        growth can refill within one Menon interval just creates imbalance in
        the opposite direction if the growth stops (the principle of
        persistence only holds over short horizons).  Solving
        ``sigma_minus(alpha) = tau`` for ``alpha`` gives

        ``alpha = tau * m * P / (Wtot * (1 + N / (P - N)))``.
        """
        tau = menon_tau(model)
        if math.isinf(tau):
            return self.fallback_alpha
        remaining = context.remaining_iterations
        target = self.interval_factor * tau
        if remaining is not None:
            target = min(target, max(1.0, float(remaining)))
        factor = 1.0 + model.N / (model.P - model.N)
        alpha = target * model.m * model.P / (model.W0 * factor)
        return float(min(self.max_alpha, max(0.0, alpha)))

    def _choose_alpha(
        self, context: LBContext, overloading: Sequence[int]
    ) -> AlphaChoice:
        """Pick the ``alpha`` for this LB step according to the strategy."""
        model = self._estimate_model(context, overloading)
        if model is None:
            choice = AlphaChoice(
                iteration=context.iteration,
                alpha=self.fallback_alpha,
                num_overloading=len(overloading),
                model=None,
                used_fallback=True,
            )
        elif self.strategy == "model":
            best_alpha, _evaluation = best_alpha_for_instance(model, self.alpha_grid)
            choice = AlphaChoice(
                iteration=context.iteration,
                alpha=float(min(self.max_alpha, best_alpha)),
                num_overloading=len(overloading),
                model=model,
                used_fallback=False,
            )
        else:  # "interval"
            choice = AlphaChoice(
                iteration=context.iteration,
                alpha=self._interval_matched_alpha(model, context),
                num_overloading=len(overloading),
                model=model,
                used_fallback=False,
            )
        self.choices.append(choice)
        return choice

    # ------------------------------------------------------------------
    # WorkloadPolicy interface.
    # ------------------------------------------------------------------
    def decide(self, context: LBContext) -> LBDecision:
        """Detect the overloading PEs and underload them by a derived ``alpha``."""
        num_pes = context.num_pes
        overloading: List[int] = []
        for rank in range(num_pes):
            view = context.wir_view_of(rank)
            own = view.get(rank)
            if own is None:
                continue
            if self.detector.is_overloading(own, list(view.values())):
                overloading.append(rank)

        downgraded = False
        if overloading and len(overloading) >= self.majority_guard * num_pes:
            downgraded = True

        if not overloading or downgraded:
            share = 1.0 / num_pes
            return LBDecision(
                target_shares=tuple(share for _ in range(num_pes)),
                alphas=tuple(0.0 for _ in range(num_pes)),
                overloading_ranks=tuple(overloading),
                downgraded_to_standard=downgraded,
                policy=self.name,
            )

        choice = self._choose_alpha(context, overloading)
        requested = np.zeros(num_pes, dtype=float)
        requested[list(overloading)] = choice.alpha
        if choice.alpha == 0.0:
            # The model judged underloading unprofitable at this step: behave
            # exactly like the standard method but keep the diagnostics.
            share = 1.0 / num_pes
            return LBDecision(
                target_shares=tuple(share for _ in range(num_pes)),
                alphas=tuple(0.0 for _ in range(num_pes)),
                overloading_ranks=tuple(overloading),
                downgraded_to_standard=False,
                policy=self.name,
            )

        shares = target_shares_from_alphas(requested)
        return LBDecision(
            target_shares=tuple(float(s) for s in shares),
            alphas=tuple(float(a) for a in requested),
            overloading_ranks=tuple(overloading),
            downgraded_to_standard=False,
            policy=self.name,
        )

    # ------------------------------------------------------------------
    @property
    def last_alpha(self) -> Optional[float]:
        """The most recently selected ``alpha`` (None before any selection)."""
        return self.choices[-1].alpha if self.choices else None

    def alpha_history(self) -> List[Tuple[int, float]]:
        """``(iteration, alpha)`` pairs of every runtime selection."""
        return [(c.iteration, c.alpha) for c in self.choices]
