"""The ULBA workload policy (Section III-C, Algorithms 1-2).

At a load-balancing step every PE decides, from the replicated WIR database,
whether *it* is overloading (z-score of its WIR above the threshold).
Overloading PEs request to keep only ``(1 - alpha)`` of the perfectly
balanced workload; the surplus is divided evenly among the other PEs.  Two
guards from the paper are applied:

* if **no** PE is overloading the decision is the even split (there is no
  imbalance growth to anticipate);
* if **at least 50 %** of the PEs request underloading, the policy downgrades
  to the standard even split ("it is counter-productive to unload a majority
  of PEs").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.lb.base import LBContext, LBDecision, WorkloadPolicy
from repro.lb.wir import LazyWIRViews, OverloadDetector
from repro.partitioning.weighted import target_shares_from_alphas
from repro.utils.validation import check_fraction

__all__ = ["ULBAPolicy"]


class ULBAPolicy(WorkloadPolicy):
    """Underloading workload policy.

    Parameters
    ----------
    alpha:
        Underloading fraction a PE applies to itself when it detects it is
        overloading (user-defined constant in the paper; 0.4 in the Figure 4
        experiments).
    detector:
        Overload detector; defaults to the paper's z-score >= 3.0 rule.
    majority_guard:
        Fraction of PEs above which underloading is disabled for the step
        (0.5 in the paper).
    """

    name = "ulba"

    def __init__(
        self,
        alpha: float = 0.4,
        *,
        detector: Optional[OverloadDetector] = None,
        majority_guard: float = 0.5,
    ) -> None:
        check_fraction(alpha, "alpha")
        check_fraction(majority_guard, "majority_guard")
        self.alpha = alpha
        self.detector = detector or OverloadDetector()
        self.majority_guard = majority_guard

    # ------------------------------------------------------------------
    def decide(self, context: LBContext) -> LBDecision:
        """Apply the per-PE z-score rule and build the ULBA target shares.

        Each rank evaluates the rule against *its own* WIR view (they may be
        slightly stale and differ across ranks in gossip mode), exactly as in
        the distributed Algorithm 1; the root then aggregates the per-rank
        ``alpha`` requests (Algorithm 2).
        """
        num_pes = context.num_pes
        requested = np.zeros(num_pes, dtype=float)
        # Three equivalent evaluation paths for the per-rank rule, fastest
        # applicable first; all produce the same floats (the matrix path's
        # row-wise reductions are bitwise identical to per-rank ones):
        # 1. complete views as one (P, P) matrix -> one vectorized pass;
        # 2. lazily materialized views -> per-rank compacted arrays;
        # 3. plain per-rank dict views (sequences handed in by tests).
        views = context.wir_views
        fast = isinstance(views, LazyWIRViews)
        matrix = views.complete_matrix() if fast else None
        if matrix is not None and type(self.detector) is OverloadDetector:
            flags = self.detector.overloading_mask_from_views(matrix)
            overloading = [int(rank) for rank in np.flatnonzero(flags)]
            requested[flags] = self.alpha
        else:
            overloading = []
            for rank in range(num_pes):
                if fast:
                    own = views.own_rate(rank)
                    if own is None:
                        continue
                    rates = views.known_values(rank)
                else:
                    view = context.wir_view_of(rank)
                    own = view.get(rank)
                    if own is None:
                        continue
                    rates = list(view.values())
                if self.detector.is_overloading(own, rates):
                    requested[rank] = self.alpha
                    overloading.append(rank)

        downgraded = False
        if overloading and len(overloading) >= self.majority_guard * num_pes:
            # Majority guard: unloading most of the machine cannot help.
            requested[:] = 0.0
            downgraded = True

        if not overloading or downgraded:
            share = 1.0 / num_pes
            return LBDecision(
                target_shares=tuple(share for _ in range(num_pes)),
                alphas=tuple(0.0 for _ in range(num_pes)),
                overloading_ranks=tuple(overloading),
                downgraded_to_standard=downgraded,
                policy=self.name,
            )

        shares = target_shares_from_alphas(requested)
        return LBDecision(
            target_shares=tuple(shares.tolist()),
            alphas=tuple(requested.tolist()),
            overloading_ranks=tuple(overloading),
            downgraded_to_standard=False,
            policy=self.name,
        )
