"""Common interfaces of the load-balancing framework.

The framework splits a load balancer into two orthogonal decisions, matching
the structure of the paper:

* a :class:`TriggerPolicy` decides **when** to call the load balancer
  (periodically, at Menon's interval, or when the accumulated degradation
  exceeds the LB cost as in Zhai et al. -- the criterion both methods use in
  the paper's numerical study);
* a :class:`WorkloadPolicy` decides **how** to redistribute the workload
  when the balancer runs (evenly for the standard method, underloaded by
  ``alpha`` for ULBA).

Both receive an :class:`LBContext` describing everything the runtime knows
at the decision point, and the workload policy returns an
:class:`LBDecision` containing the per-PE target shares handed to the
partitioner.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = ["LBContext", "LBDecision", "WorkloadPolicy", "TriggerPolicy"]


@dataclass(frozen=True)
class LBContext:
    """Snapshot of the runtime state used for load-balancing decisions.

    Attributes
    ----------
    iteration:
        Current application iteration.
    pe_workloads:
        Current workload of every PE, in FLOP (or any unit proportional to
        compute time).
    wir_views:
        For every rank, the WIR values it currently knows (rank -> WIR), as
        provided by the replicated WIR database.  In instant mode all views
        are identical.  Any sequence of per-rank dictionaries is accepted;
        the runtime passes a lazily materialized sequence
        (:class:`repro.lb.wir.LazyWIRViews`) so per-rank dictionaries are
        only built when a policy actually inspects them.
    last_lb_iteration:
        Iteration of the previous LB call (0 when none happened yet).
    accumulated_degradation:
        Sum of per-iteration degradations since the last LB step (the Zhai
        criterion accumulator), in seconds.
    average_lb_cost:
        Current estimate of the cost of one LB step, in seconds.
    pe_speed:
        PE speed in FLOP/s (used to convert workloads to times when needed).
    total_iterations:
        Total number of iterations the application will run (Algorithm 1's
        ``MAX_STEP``), when the runtime knows it.  Policies that plan ahead
        (e.g. the dynamic-``alpha`` extension) use it to bound their horizon;
        ``None`` means unknown.
    """

    iteration: int
    pe_workloads: Tuple[float, ...]
    wir_views: Sequence[Dict[int, float]]
    last_lb_iteration: int = 0
    accumulated_degradation: float = 0.0
    average_lb_cost: float = 0.0
    pe_speed: float = 1.0e9
    total_iterations: Optional[int] = None

    @property
    def num_pes(self) -> int:
        """Number of PEs."""
        return len(self.pe_workloads)

    @property
    def total_workload(self) -> float:
        """Total workload across PEs (``Wtot(i)``)."""
        return float(sum(self.pe_workloads))

    @property
    def iterations_since_lb(self) -> int:
        """Iterations elapsed since the previous LB call."""
        return self.iteration - self.last_lb_iteration

    @property
    def remaining_iterations(self) -> Optional[int]:
        """Iterations left until the application ends (None when unknown)."""
        if self.total_iterations is None:
            return None
        return max(0, self.total_iterations - self.iteration)

    def wir_view_of(self, rank: int) -> Dict[int, float]:
        """The WIR view of ``rank`` (empty dict when unknown)."""
        if not 0 <= rank < self.num_pes:
            raise ValueError(f"rank {rank} outside [0, {self.num_pes})")
        return self.wir_views[rank] if len(self.wir_views) else {}


@dataclass(frozen=True)
class LBDecision:
    """Outcome of a workload policy at one LB step."""

    #: Target share of the total workload per PE (sums to 1).
    target_shares: Tuple[float, ...]
    #: Per-PE underloading fraction actually applied (all zero for the
    #: standard method, or when the 50 % guard downgraded ULBA).
    alphas: Tuple[float, ...]
    #: Ranks detected as overloading at this step.
    overloading_ranks: Tuple[int, ...] = ()
    #: True when the ULBA policy fell back to the even split because a
    #: majority of PEs requested underloading (Section III-C guard).
    downgraded_to_standard: bool = False
    #: Name of the policy that produced the decision.
    policy: str = ""

    def __post_init__(self) -> None:
        shares = np.asarray(self.target_shares, dtype=float)
        if shares.size == 0:
            raise ValueError("target_shares must not be empty")
        if np.any(shares < 0.0):
            raise ValueError("target_shares must all be >= 0")
        total = shares.sum()
        if not np.isclose(total, 1.0, rtol=0.0, atol=1e-9):
            raise ValueError(f"target_shares must sum to 1, got {total}")
        if len(self.alphas) != shares.size:
            raise ValueError("alphas must have one entry per PE")

    @property
    def num_overloading(self) -> int:
        """Number of PEs flagged as overloading."""
        return len(self.overloading_ranks)

    @property
    def is_even(self) -> bool:
        """True when the decision is the perfectly even split."""
        shares = np.asarray(self.target_shares)
        return bool(np.allclose(shares, 1.0 / shares.size))


class WorkloadPolicy(abc.ABC):
    """Strategy deciding the per-PE target workload shares at a LB step."""

    #: Human-readable policy name (used in reports and experiment tables).
    name: str = "workload-policy"

    @abc.abstractmethod
    def decide(self, context: LBContext) -> LBDecision:
        """Return the target shares for the LB step described by ``context``."""

    def notify_balanced(self, context: LBContext, decision: LBDecision) -> None:
        """Hook called after the LB step was executed (optional)."""


class TriggerPolicy(abc.ABC):
    """Strategy deciding when the load balancer should be invoked."""

    #: Human-readable policy name.
    name: str = "trigger-policy"

    @abc.abstractmethod
    def should_balance(self, context: LBContext) -> bool:
        """Return True when the load balancer should run at this iteration."""

    def notify_balanced(self, context: LBContext) -> None:
        """Hook called after a LB step was executed (optional)."""
