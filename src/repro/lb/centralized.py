"""Centralized load-balancing technique (Algorithm 2).

The paper's evaluation implements its stripe partitioner as a *centralized*
LB technique: the per-PE ``alpha`` requests are gathered on a single PE, the
stripe boundaries are computed there from the per-column workloads, the
partition is broadcast, and the cells are migrated accordingly.  The
:class:`CentralizedLoadBalancer` reproduces that flow on the virtual
cluster, charging each phase's virtual cost, and works with any
:class:`~repro.lb.base.WorkloadPolicy` (standard or ULBA) -- the policy only
changes the target shares handed to the partitioner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.lb.base import LBContext, LBDecision, WorkloadPolicy
from repro.partitioning.metrics import migration_volume
from repro.partitioning.stripe import StripePartition, StripePartitioner
from repro.simcluster.cluster import VirtualCluster
from repro.utils.validation import check_non_negative

__all__ = ["LBStepReport", "CentralizedLoadBalancer"]


@dataclass(frozen=True)
class LBStepReport:
    """Everything that happened during one centralized LB step."""

    #: Iteration at which the step was executed.
    iteration: int
    #: The workload policy's decision (target shares, alphas, ...).
    decision: LBDecision
    #: The new stripe partition.
    partition: StripePartition
    #: Workload (in column-load units) that changed owner.
    migrated_load: float
    #: Virtual cost of the LB step in seconds (partitioning + broadcast +
    #: migration).
    cost: float


class CentralizedLoadBalancer:
    """Centralized stripe load balancer bound to a virtual cluster.

    Parameters
    ----------
    cluster:
        The virtual cluster the application runs on.
    policy:
        Workload policy (standard or ULBA).
    root:
        Rank performing the partitioning (0 in the paper).
    partition_flop_per_column:
        Cost, in FLOP on the root PE, of computing the stripe boundaries per
        domain column (models the prefix-sum pass of the partitioner).
    bytes_per_load_unit:
        Migration volume charged per unit of migrated column load.  One load
        unit corresponds to one original fluid cell; the default of 800
        bytes models the state a CFD-style cell carries (tens of doubles
        plus metadata), so that migrating a significant fraction of a stripe
        costs on the order of one iteration -- the regime of Table II, where
        the LB cost is 10 %-300 % of an iteration.
    """

    def __init__(
        self,
        cluster: VirtualCluster,
        policy: WorkloadPolicy,
        *,
        root: int = 0,
        partition_flop_per_column: float = 50.0,
        bytes_per_load_unit: float = 800.0,
    ) -> None:
        self.cluster = cluster
        self.policy = policy
        if not 0 <= root < cluster.size:
            raise ValueError(f"root rank {root} outside [0, {cluster.size})")
        self.root = root
        check_non_negative(partition_flop_per_column, "partition_flop_per_column")
        check_non_negative(bytes_per_load_unit, "bytes_per_load_unit")
        self.partition_flop_per_column = partition_flop_per_column
        self.bytes_per_load_unit = bytes_per_load_unit
        self.partitioner = StripePartitioner(cluster.size)
        #: Running history of LB step reports.
        self.history: list[LBStepReport] = []
        self._average_cache: "tuple[int, float]" = (0, 0.0)

    # ------------------------------------------------------------------
    @property
    def average_cost(self) -> float:
        """Average virtual cost of the LB steps performed so far (seconds).

        Memoized on the history length: the runner reads this every
        iteration while the history only grows at LB steps, so the mean is
        recomputed only when a new report was appended.
        """
        if not self.history:
            return 0.0
        cached_len, cached_mean = self._average_cache
        if cached_len != len(self.history):
            cached_mean = float(np.mean([report.cost for report in self.history]))
            self._average_cache = (len(self.history), cached_mean)
        return cached_mean

    def execute(
        self,
        context: LBContext,
        column_loads: Sequence[float],
        current_partition: Optional[StripePartition] = None,
    ) -> LBStepReport:
        """Run one LB step (Algorithm 2) and charge its virtual cost.

        Parameters
        ----------
        context:
            Runtime snapshot used by the workload policy.
        column_loads:
            Per-column workload of the domain at this iteration.
        current_partition:
            The partition in effect before the step; used to compute the
            migration volume (and hence the migration cost).  When omitted
            the migration cost is charged as if every cell moved.
        """
        loads = np.asarray(column_loads, dtype=float)
        decision = self.policy.decide(context)
        new_partition = self.partitioner.partition(
            loads, target_shares=decision.target_shares
        )

        if current_partition is None:
            migrated = float(loads.sum())
            per_pe_migrated = np.full(
                self.cluster.size, migrated / self.cluster.size
            )
        else:
            if current_partition.num_columns != new_partition.num_columns:
                raise ValueError(
                    "current_partition does not cover the same number of "
                    "columns as the new partition"
                )
            old_owners = current_partition.partition.owners()
            new_owners = new_partition.partition.owners()
            migrated = migration_volume(old_owners, new_owners, loads)
            # Per-PE migration volume: load of the columns a PE sends plus
            # the load of the columns it receives (both cross its NIC).
            moved = old_owners != new_owners
            sent = np.bincount(
                old_owners[moved], weights=loads[moved], minlength=self.cluster.size
            )
            received = np.bincount(
                new_owners[moved], weights=loads[moved], minlength=self.cluster.size
            )
            per_pe_migrated = sent + received

        partition_seconds = (
            self.partition_flop_per_column * loads.size / self.cluster.pes[self.root].speed
        )
        cost = self.cluster.charge_lb_step(
            iteration=context.iteration,
            partition_seconds=partition_seconds,
            migration_bytes_per_pe=per_pe_migrated * self.bytes_per_load_unit,
            root=self.root,
        )

        report = LBStepReport(
            iteration=context.iteration,
            decision=decision,
            partition=new_partition,
            migrated_load=migrated,
            cost=cost,
        )
        self.history.append(report)
        self.policy.notify_balanced(context, decision)
        return report
