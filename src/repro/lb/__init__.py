"""Load-balancing framework.

This package implements the decision layer of the paper: *when* to call the
load balancer (adaptive triggering policies) and *how* to redistribute the
workload when it is called (standard even split vs. ULBA underloading), on
top of the partitioning substrate of :mod:`repro.partitioning`.

Modules
-------
* :mod:`repro.lb.wir` -- workload-increase-rate (WIR) estimation, the
  replicated WIR database fed by gossip, and the z-score outlier detector
  used by Algorithm 1 to decide whether a PE is *overloading*.
* :mod:`repro.lb.base` -- common dataclasses: :class:`LBDecision` (what the
  policy decided), :class:`LBContext` (what the runtime knows when asking),
  and the :class:`WorkloadPolicy` / :class:`TriggerPolicy` interfaces.
* :mod:`repro.lb.standard` -- the standard workload policy (perfectly even
  redistribution).
* :mod:`repro.lb.ulba` -- the ULBA workload policy: z-score detection of
  overloading PEs, per-PE ``alpha`` assignment, and the 50 %-majority guard.
* :mod:`repro.lb.adaptive` -- triggering policies: never, periodic, Menon's
  ``tau`` interval, the Zhai-style cumulative-degradation trigger used by
  both methods in the paper's numerical study, and the ULBA-aware variant
  that adds the underloading overhead to the threshold.
* :mod:`repro.lb.centralized` -- the centralized LB technique of
  Algorithm 2, binding a workload policy to the stripe partitioner and the
  virtual cluster.
* :mod:`repro.lb.registry` -- the string-keyed registry resolving policy /
  trigger / pair names (``"standard"``, ``"ulba"``, ``"ulba-dynamic"``) into
  fresh policy objects; the single home of the name-to-class mapping used by
  the campaign grid, the experiments, the CLI and :mod:`repro.api`.
"""

from repro.lb.base import (
    LBContext,
    LBDecision,
    TriggerPolicy,
    WorkloadPolicy,
)
from repro.lb.wir import (
    LazyWIRViews,
    OverloadDetector,
    WIREstimate,
    WIREstimateArray,
    WIRDatabase,
)
from repro.lb.standard import StandardPolicy
from repro.lb.ulba import ULBAPolicy
from repro.lb.dynamic_alpha import AlphaChoice, DynamicAlphaULBAPolicy
from repro.lb.adaptive import (
    DegradationTrigger,
    MenonIntervalTrigger,
    NeverTrigger,
    PeriodicTrigger,
    ULBADegradationTrigger,
)
from repro.lb.centralized import CentralizedLoadBalancer, LBStepReport
from repro.lb.registry import (
    available_policies,
    available_policy_pairs,
    available_triggers,
    make_policy,
    make_policy_pair,
    make_trigger,
    register_policy,
    register_policy_pair,
    register_trigger,
)

__all__ = [
    "AlphaChoice",
    "CentralizedLoadBalancer",
    "DegradationTrigger",
    "DynamicAlphaULBAPolicy",
    "LBContext",
    "LBDecision",
    "LazyWIRViews",
    "LBStepReport",
    "MenonIntervalTrigger",
    "NeverTrigger",
    "OverloadDetector",
    "PeriodicTrigger",
    "StandardPolicy",
    "TriggerPolicy",
    "ULBADegradationTrigger",
    "ULBAPolicy",
    "WIRDatabase",
    "WIREstimate",
    "WIREstimateArray",
    "WorkloadPolicy",
    "available_policies",
    "available_policy_pairs",
    "available_triggers",
    "make_policy",
    "make_policy_pair",
    "make_trigger",
    "register_policy",
    "register_policy_pair",
    "register_trigger",
]
