"""The standard workload policy: perfectly even redistribution.

This is the baseline of the whole paper ("the standard load balancing
method"): whenever the load balancer runs, every PE receives exactly
``Wtot(i) / P`` of the workload, regardless of how the imbalance has been
growing.
"""

from __future__ import annotations

from repro.lb.base import LBContext, LBDecision, WorkloadPolicy

__all__ = ["StandardPolicy"]


class StandardPolicy(WorkloadPolicy):
    """Even-split workload policy (the paper's standard LB method)."""

    name = "standard"

    def decide(self, context: LBContext) -> LBDecision:
        """Give every PE the same target share ``1 / P``."""
        num_pes = context.num_pes
        share = 1.0 / num_pes
        return LBDecision(
            target_shares=tuple(share for _ in range(num_pes)),
            alphas=tuple(0.0 for _ in range(num_pes)),
            overloading_ranks=(),
            downgraded_to_standard=False,
            policy=self.name,
        )
