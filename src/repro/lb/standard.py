"""The standard workload policy: perfectly even redistribution.

This is the baseline of the whole paper ("the standard load balancing
method"): whenever the load balancer runs, every PE receives exactly
``Wtot(i) / P`` of the workload, regardless of how the imbalance has been
growing.
"""

from __future__ import annotations

from repro.lb.base import LBContext, LBDecision, WorkloadPolicy

__all__ = ["StandardPolicy"]


class StandardPolicy(WorkloadPolicy):
    """Even-split workload policy (the paper's standard LB method)."""

    name = "standard"

    def __init__(self) -> None:
        self._cached: "dict[int, LBDecision]" = {}

    def decide(self, context: LBContext) -> LBDecision:
        """Give every PE the same target share ``1 / P``.

        The decision only depends on the PE count, so it is built (and
        validated) once per cluster size and reused -- :class:`LBDecision`
        is immutable, so sharing the instance across LB steps is safe.
        """
        num_pes = context.num_pes
        decision = self._cached.get(num_pes)
        if decision is None:
            share = 1.0 / num_pes
            decision = LBDecision(
                target_shares=tuple(share for _ in range(num_pes)),
                alphas=tuple(0.0 for _ in range(num_pes)),
                overloading_ranks=(),
                downgraded_to_standard=False,
                policy=self.name,
            )
            self._cached[num_pes] = decision
        return decision
