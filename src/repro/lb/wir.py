"""Workload-increase-rate (WIR) estimation and the replicated WIR database.

Section III-C: "each PE keeps a database that stores the WIR of every PE.
Each PE evaluates its WIR and propagates it (as well as the most recent WIRs
in its database) to the other PEs using a dissemination algorithm".  A PE is
considered *overloading* when the z-score of its WIR within the distribution
of all known WIRs exceeds a threshold (3.0 in the paper).

Three pieces live here:

* :class:`WIREstimate` -- per-PE online estimation of the WIR from observed
  per-iteration workloads (simple finite differences with an exponential
  moving average, honouring the principle of persistence).
* :class:`WIRDatabase` -- the replicated board of WIR values, built on the
  gossip substrate (:class:`repro.simcluster.gossip.GossipBoard`) or fed
  directly when gossip is not simulated.
* :class:`OverloadDetector` -- the z-score rule of Algorithm 1 (line 19).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.simcluster.gossip import GossipBoard, GossipConfig
from repro.utils.rng import SeedLike
from repro.utils.stats import zscore
from repro.utils.validation import check_fraction, check_positive, check_positive_int

__all__ = ["WIREstimate", "WIRDatabase", "OverloadDetector"]


@dataclass
class WIREstimate:
    """Online estimate of one PE's workload increase rate.

    The WIR is the per-iteration increase of the PE's workload (FLOP per
    iteration).  The estimator keeps an exponential moving average of the
    finite differences of the observed workloads, which smooths the
    stochastic erosion dynamics while staying responsive; the principle of
    persistence (Kale, 2002) justifies using a smoothed recent history as a
    prediction of the near future.
    """

    #: Smoothing factor of the exponential moving average (1 = last diff only).
    smoothing: float = 0.5
    _last_workload: Optional[float] = field(default=None, repr=False)
    _rate: float = field(default=0.0, repr=False)
    _num_observations: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        check_fraction(self.smoothing, "smoothing")
        if self.smoothing == 0.0:
            raise ValueError("smoothing must be > 0 (0 would never update)")

    # ------------------------------------------------------------------
    def observe(self, workload: float) -> float:
        """Record the PE's workload at the current iteration; returns the WIR."""
        if workload < 0:
            raise ValueError(f"workload must be >= 0, got {workload}")
        if self._last_workload is not None:
            diff = workload - self._last_workload
            if self._num_observations <= 1:
                self._rate = diff
            else:
                self._rate = (
                    self.smoothing * diff + (1.0 - self.smoothing) * self._rate
                )
        self._last_workload = float(workload)
        self._num_observations += 1
        return self._rate

    def reset_after_migration(self, workload: float) -> None:
        """Re-anchor the estimator after a LB step moved work around.

        The jump in workload caused by migration is not application dynamics
        and must not pollute the WIR; the rate estimate itself is kept
        (persistence), only the anchor workload is replaced.
        """
        if workload < 0:
            raise ValueError(f"workload must be >= 0, got {workload}")
        self._last_workload = float(workload)

    @property
    def rate(self) -> float:
        """Current WIR estimate (FLOP per iteration)."""
        return self._rate

    @property
    def num_observations(self) -> int:
        """Number of workload observations seen so far."""
        return self._num_observations


class WIRDatabase:
    """Replicated ``rank -> WIR`` database.

    The database can operate in two modes:

    * **gossip mode** (default): values propagate through a
      :class:`GossipBoard`, one dissemination step per application
      iteration, so each rank's view may be slightly stale -- exactly the
      mechanism of Section III-C;
    * **instant mode** (``use_gossip=False``): every publish is immediately
      visible to all ranks, modelling an allgather-based implementation and
      convenient for deterministic tests.
    """

    def __init__(
        self,
        num_ranks: int,
        *,
        use_gossip: bool = True,
        gossip_config: Optional[GossipConfig] = None,
        seed: SeedLike = None,
    ) -> None:
        check_positive_int(num_ranks, "num_ranks")
        self.num_ranks = num_ranks
        self.use_gossip = use_gossip
        self._board = (
            GossipBoard(num_ranks, config=gossip_config, seed=seed)
            if use_gossip
            else None
        )
        self._instant: Dict[int, float] = {}

    # ------------------------------------------------------------------
    def publish(self, rank: int, wir: float) -> None:
        """Rank ``rank`` publishes its current WIR."""
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} outside [0, {self.num_ranks})")
        if self._board is not None:
            self._board.publish(rank, wir)
        else:
            self._instant[rank] = float(wir)

    def disseminate(self) -> None:
        """Perform one gossip dissemination step (no-op in instant mode)."""
        if self._board is not None:
            self._board.step()

    def view(self, rank: int) -> Dict[int, float]:
        """WIR values known by ``rank`` (may be partial in gossip mode)."""
        if self._board is not None:
            return self._board.local_view(rank)
        return dict(self._instant)

    def values(self, rank: int) -> List[float]:
        """Known WIR values as a list (order unspecified)."""
        return list(self.view(rank).values())

    def own_rate(self, rank: int) -> Optional[float]:
        """The WIR rank ``rank`` published for itself, if any."""
        return self.view(rank).get(rank)

    def coverage(self, rank: int) -> float:
        """Fraction of ranks whose WIR is known by ``rank``."""
        return len(self.view(rank)) / self.num_ranks


@dataclass(frozen=True)
class OverloadDetector:
    """z-score outlier rule deciding whether a PE is overloading.

    Algorithm 1, line 19: a PE is overloading when the z-score of its WIR in
    the distribution of all known WIRs exceeds ``threshold`` (3.0 in the
    paper).  With fewer than ``min_population`` known values the detector
    reports "not overloading" (not enough evidence).
    """

    threshold: float = 3.0
    min_population: int = 2

    def __post_init__(self) -> None:
        check_positive(self.threshold, "threshold")
        check_positive_int(self.min_population, "min_population")

    def is_overloading(self, own_rate: float, all_rates: Sequence[float]) -> bool:
        """Apply the z-score rule to one PE."""
        rates = list(all_rates)
        if len(rates) < self.min_population:
            return False
        return zscore(own_rate, rates) >= self.threshold

    def overloading_ranks(self, rates_by_rank: Dict[int, float]) -> List[int]:
        """All ranks flagged as overloading within a common view."""
        values = list(rates_by_rank.values())
        return [
            rank
            for rank, rate in sorted(rates_by_rank.items())
            if self.is_overloading(rate, values)
        ]
