"""Workload-increase-rate (WIR) estimation and the replicated WIR database.

Section III-C: "each PE keeps a database that stores the WIR of every PE.
Each PE evaluates its WIR and propagates it (as well as the most recent WIRs
in its database) to the other PEs using a dissemination algorithm".  A PE is
considered *overloading* when the z-score of its WIR within the distribution
of all known WIRs exceeds a threshold (3.0 in the paper).

Four pieces live here:

* :class:`WIREstimate` -- per-PE online estimation of the WIR from observed
  per-iteration workloads (simple finite differences with an exponential
  moving average, honouring the principle of persistence).
* :class:`WIREstimateArray` -- the vectorized form: one estimator state
  vector for all ``P`` PEs, updated with a single batched EMA per iteration
  (numerically identical to ``P`` scalar :class:`WIREstimate` updates).
* :class:`WIRDatabase` -- the replicated board of WIR values, built on the
  gossip substrate (:class:`repro.simcluster.gossip.GossipBoard`) or fed
  directly when gossip is not simulated.
* :class:`OverloadDetector` -- the z-score rule of Algorithm 1 (line 19).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.simcluster.gossip import (
    BatchGossipBoard,
    GossipConfig,
    SparseGossipBoard,
    make_gossip_board,
)
from repro.utils.markers import hot_path
from repro.utils.rng import SeedLike
from repro.utils.stats import zscore
from repro.utils.validation import check_fraction, check_positive, check_positive_int

__all__ = [
    "BatchWIRDatabase",
    "LazyWIRViews",
    "OverloadDetector",
    "WIRDatabase",
    "WIREstimate",
    "WIREstimateArray",
]


@dataclass
class WIREstimate:
    """Online estimate of one PE's workload increase rate.

    The WIR is the per-iteration increase of the PE's workload (FLOP per
    iteration).  The estimator keeps an exponential moving average of the
    finite differences of the observed workloads, which smooths the
    stochastic erosion dynamics while staying responsive; the principle of
    persistence (Kale, 2002) justifies using a smoothed recent history as a
    prediction of the near future.
    """

    #: Smoothing factor of the exponential moving average (1 = last diff only).
    smoothing: float = 0.5
    _last_workload: Optional[float] = field(default=None, repr=False)
    _rate: float = field(default=0.0, repr=False)
    _num_observations: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        check_fraction(self.smoothing, "smoothing")
        if self.smoothing == 0.0:
            raise ValueError("smoothing must be > 0 (0 would never update)")

    # ------------------------------------------------------------------
    def observe(self, workload: float) -> float:
        """Record the PE's workload at the current iteration; returns the WIR."""
        if workload < 0:
            raise ValueError(f"workload must be >= 0, got {workload}")
        if self._last_workload is not None:
            diff = workload - self._last_workload
            if self._num_observations <= 1:
                self._rate = diff
            else:
                self._rate = (
                    self.smoothing * diff + (1.0 - self.smoothing) * self._rate
                )
        self._last_workload = float(workload)
        self._num_observations += 1
        return self._rate

    def reset_after_migration(self, workload: float) -> None:
        """Re-anchor the estimator after a LB step moved work around.

        The jump in workload caused by migration is not application dynamics
        and must not pollute the WIR; the rate estimate itself is kept
        (persistence), only the anchor workload is replaced.
        """
        if workload < 0:
            raise ValueError(f"workload must be >= 0, got {workload}")
        self._last_workload = float(workload)

    @property
    def rate(self) -> float:
        """Current WIR estimate (FLOP per iteration)."""
        return self._rate

    @property
    def num_observations(self) -> int:
        """Number of workload observations seen so far."""
        return self._num_observations


class _WIREstimateRankView:
    """Scalar-estimator facade over one rank of a :class:`WIREstimateArray`."""

    __slots__ = ("_array", "_rank")

    def __init__(self, array: "WIREstimateArray", rank: int) -> None:
        self._array = array
        self._rank = rank

    @property
    def rate(self) -> float:
        """Current WIR estimate of this rank (FLOP per iteration)."""
        return float(self._array._rates[self._rank])

    @property
    def num_observations(self) -> int:
        """Number of workload observations seen by this rank."""
        return int(self._array._num_observations[self._rank])


class WIREstimateArray:
    """Vectorized WIR estimators for all ``P`` PEs of a cluster.

    Holds the state of ``P`` independent :class:`WIREstimate` instances as
    flat vectors and performs the per-iteration update -- finite difference
    of the observed workloads followed by an exponential moving average --
    as one batched array operation.  The update is numerically identical
    (same elementwise IEEE operations) to looping over ``P`` scalar
    estimators, which the equivalence tests assert.

    Iterating the array (or indexing it) yields lightweight per-rank views
    exposing ``rate`` and ``num_observations``, preserving the shape of the
    previous list-of-estimators API.
    """

    def __init__(
        self,
        num_pes: int,
        *,
        smoothing: float = 0.5,
        replicas: Optional[int] = None,
    ) -> None:
        check_positive_int(num_pes, "num_pes")
        check_fraction(smoothing, "smoothing")
        if smoothing == 0.0:
            raise ValueError("smoothing must be > 0 (0 would never update)")
        if replicas is not None:
            check_positive_int(replicas, "replicas")
            shape: "tuple[int, ...]" = (replicas, num_pes)
        else:
            shape = (num_pes,)
        self.num_pes = num_pes
        #: Number of batched replicas, or ``None`` for the plain per-PE form.
        self.replicas = replicas
        self.smoothing = float(smoothing)
        self._shape = shape
        self._last_workloads = np.zeros(shape, dtype=float)
        self._has_last = np.zeros(shape, dtype=bool)
        self._rates = np.zeros(shape, dtype=float)
        self._num_observations = np.zeros(shape, dtype=np.int64)

    # ------------------------------------------------------------------
    # Audited for FLOW-HOT: the runners pass float64 ndarrays, on which the
    # defensive `np.asarray` below is a no-op view; every update is a
    # vectorized in-place/elementwise operation.
    @hot_path
    def observe(self, workloads: np.ndarray) -> np.ndarray:
        """Record every PE's workload at the current iteration.

        With ``replicas=R`` the input is the ``(R, P)`` workload matrix and
        all ``R * P`` estimators update in one batched EMA -- elementwise
        identical to ``R`` solo arrays.  Returns the updated WIR array (a
        reference to internal state; copy before mutating).
        """
        w = np.asarray(workloads, dtype=float)
        if w.shape != self._shape:
            raise ValueError(
                f"workloads must have shape {self._shape}, got {w.shape}"
            )
        if (w < 0).any():
            raise ValueError("workloads must all be >= 0")
        diff = w - self._last_workloads
        smoothed = self.smoothing * diff + (1.0 - self.smoothing) * self._rates
        updated = np.where(self._num_observations <= 1, diff, smoothed)
        self._rates = np.where(self._has_last, updated, self._rates)
        np.copyto(self._last_workloads, w)
        self._has_last[:] = True
        self._num_observations += 1
        return self._rates

    @hot_path  # audited: defensive asarray is a no-op on the runner's float64 input
    def reset_after_migration(self, workloads: np.ndarray) -> None:
        """Re-anchor every estimator after a LB step moved work around.

        The jump in workload caused by migration is not application dynamics
        and must not pollute the WIR; the rate estimates are kept
        (persistence), only the anchor workloads are replaced.
        """
        w = np.asarray(workloads, dtype=float)
        if w.shape != self._shape:
            raise ValueError(
                f"workloads must have shape {self._shape}, got {w.shape}"
            )
        if (w < 0).any():
            raise ValueError("workloads must all be >= 0")
        np.copyto(self._last_workloads, w)

    @hot_path  # audited: defensive asarray is a no-op on the runner's float64 input
    def reset_replica_after_migration(
        self, replica: int, workloads: np.ndarray
    ) -> None:
        """Re-anchor the estimators of one replica row (batched form only).

        The batched runner calls this when a single replica's LB step moved
        work around while the other replicas kept their anchors.
        """
        if self.replicas is None:
            raise ValueError("reset_replica_after_migration requires replicas=R")
        if not 0 <= replica < self.replicas:
            raise ValueError(f"replica {replica} outside [0, {self.replicas})")
        w = np.asarray(workloads, dtype=float)
        if w.shape != (self.num_pes,):
            raise ValueError(
                f"workloads must have one entry per PE ({self.num_pes}), "
                f"got {w.shape}"
            )
        if (w < 0).any():
            raise ValueError("workloads must all be >= 0")
        self._last_workloads[replica] = w

    # ------------------------------------------------------------------
    @property
    def rates(self) -> np.ndarray:
        """Current per-PE WIR estimates (copy)."""
        return self._rates.copy()

    def __len__(self) -> int:
        return self.num_pes

    def __getitem__(self, rank: int) -> _WIREstimateRankView:
        if self.replicas is not None:
            raise TypeError(
                "per-rank views are only available on the unbatched form; "
                "index the .rates matrix instead"
            )
        if not 0 <= rank < self.num_pes:
            raise IndexError(f"rank {rank} outside [0, {self.num_pes})")
        return _WIREstimateRankView(self, rank)

    def __iter__(self):
        return (self[rank] for rank in range(self.num_pes))


class LazyWIRViews:
    """Lazily materialized per-rank WIR views (``Sequence[Dict[int, float]]``).

    Building every rank's view dictionary eagerly costs ``O(P^2)`` dict
    operations per iteration; trigger policies typically look at one view
    (or none).  This sequence adapter materializes a rank's ``dict`` only on
    first access and caches it, so the quadratic cost is paid only when a
    policy actually inspects all views (i.e. at LB steps).
    """

    __slots__ = ("_db", "_cache")

    def __init__(self, db: "WIRDatabase") -> None:
        self._db = db
        self._cache: Dict[int, Dict[int, float]] = {}

    def __len__(self) -> int:
        return self._db.num_ranks

    def __getitem__(self, rank: int) -> Dict[int, float]:
        if not 0 <= rank < self._db.num_ranks:
            raise IndexError(f"rank {rank} outside [0, {self._db.num_ranks})")
        view = self._cache.get(rank)
        if view is None:
            view = self._db.view(rank)
            self._cache[rank] = view
        return view

    def __iter__(self):
        return (self[rank] for rank in range(self._db.num_ranks))

    # -- compacted fast path (same numbers as the dict views) -----------
    def own_rate(self, rank: int) -> Optional[float]:
        """The WIR ``rank`` published for itself, without building a dict."""
        return self._db.own_rate(rank)

    def known_values(self, rank: int) -> np.ndarray:
        """``rank``'s known WIRs in ascending source order (no dict).

        Identical values, in identical order, to
        ``list(self[rank].values())`` -- the ULBA policy's per-rank overload
        rule consumes this instead of materializing ``P`` dictionaries per
        LB step.
        """
        return self._db.known_values(rank)

    def complete_matrix(self) -> Optional[np.ndarray]:
        """The full ``(P, P)`` view matrix once every entry is known.

        Row ``r`` is rank ``r``'s complete view; ``None`` while any view is
        still partial (or when the backing database does not expose the
        matrix form).  Read-only.
        """
        accessor = getattr(self._db, "complete_matrix", None)
        return accessor() if accessor is not None else None


class WIRDatabase:
    """Replicated ``rank -> WIR`` database.

    The database can operate in two modes:

    * **gossip mode** (default): values propagate through a gossip board,
      one dissemination step per application iteration, so each rank's view
      may be slightly stale -- exactly the mechanism of Section III-C.  The
      board implementation follows ``gossip_config.mode``: the dense
      ``(P, P)`` :class:`GossipBoard` (default), or the memory-bounded
      :class:`~repro.simcluster.gossip.SparseGossipBoard` for large
      clusters, whose views are partial by design (the consumers' dense
      ``complete_matrix`` fast paths then degrade to the per-rank rule);
    * **instant mode** (``use_gossip=False``): every publish is immediately
      visible to all ranks, modelling an allgather-based implementation and
      convenient for deterministic tests.
    """

    def __init__(
        self,
        num_ranks: int,
        *,
        use_gossip: bool = True,
        gossip_config: Optional[GossipConfig] = None,
        seed: SeedLike = None,
    ) -> None:
        check_positive_int(num_ranks, "num_ranks")
        self.num_ranks = num_ranks
        self.use_gossip = use_gossip
        self._board = (
            make_gossip_board(num_ranks, config=gossip_config, seed=seed)
            if use_gossip
            else None
        )
        self._instant_values = np.zeros(num_ranks, dtype=float)
        self._instant_known = np.zeros(num_ranks, dtype=bool)

    # ------------------------------------------------------------------
    def publish(self, rank: int, wir: float) -> None:
        """Rank ``rank`` publishes its current WIR."""
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} outside [0, {self.num_ranks})")
        if self._board is not None:
            self._board.publish(rank, wir)
        else:
            self._instant_values[rank] = float(wir)
            self._instant_known[rank] = True

    # Audited for FLOW-HOT: asarray is a no-op on the runner's float64 rates
    # array and both branches are vectorized writes into preallocated state.
    @hot_path
    def publish_all(self, wirs: np.ndarray) -> None:
        """Every rank publishes its WIR in one vectorized update.

        Equivalent to ``publish(r, wirs[r])`` for every rank, without ``P``
        Python-level calls; this is what the runner's hot loop uses.
        """
        wirs = np.asarray(wirs, dtype=float)
        if wirs.shape != (self.num_ranks,):
            raise ValueError(
                f"wirs must have one entry per rank ({self.num_ranks}), "
                f"got {wirs.shape}"
            )
        if self._board is not None:
            self._board.publish_all(wirs)
        else:
            np.copyto(self._instant_values, wirs)
            self._instant_known[:] = True

    def disseminate(self) -> None:
        """Perform one gossip dissemination step (no-op in instant mode)."""
        if self._board is not None:
            self._board.step()

    def view(self, rank: int) -> Dict[int, float]:
        """WIR values known by ``rank`` (may be partial in gossip mode)."""
        if self._board is not None:
            return self._board.local_view(rank)
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} outside [0, {self.num_ranks})")
        known = np.flatnonzero(self._instant_known)
        return {int(r): float(self._instant_values[r]) for r in known}

    def views(self) -> LazyWIRViews:
        """Lazily materialized sequence of every rank's view.

        The returned object behaves like ``tuple(view(r) for r in ranks)``
        but builds each rank's dictionary only on first access -- the hot
        loop hands it to :class:`~repro.lb.base.LBContext` so the ``O(P^2)``
        dict construction is only paid when a policy inspects the views.
        """
        return LazyWIRViews(self)

    def values(self, rank: int) -> List[float]:
        """Known WIR values as a list (order unspecified)."""
        return list(self.view(rank).values())

    def known_values(self, rank: int) -> np.ndarray:
        """``rank``'s known WIRs, compacted in ascending source order.

        Same numbers as ``list(view(rank).values())`` without the dict.
        """
        if self._board is not None:
            return self._board.known_values_row(rank)
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} outside [0, {self.num_ranks})")
        return self._instant_values[self._instant_known]

    def own_rate(self, rank: int) -> Optional[float]:
        """The WIR rank ``rank`` published for itself, if any."""
        if self._board is not None:
            return self._board.own_value(rank)
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} outside [0, {self.num_ranks})")
        if not self._instant_known[rank]:
            return None
        return float(self._instant_values[rank])

    def complete_matrix(self) -> Optional[np.ndarray]:
        """The full ``(P, P)`` view matrix once every entry is known.

        In instant mode every rank shares the same (complete) view, so the
        matrix is a broadcast of the value vector.  Read-only.
        """
        if self._board is not None:
            return self._board.complete_matrix()
        if not self._instant_known.all():
            return None
        return np.broadcast_to(
            self._instant_values, (self.num_ranks, self.num_ranks)
        )

    def coverage(self, rank: int) -> float:
        """Fraction of ranks whose WIR is known by ``rank``."""
        return len(self.view(rank)) / self.num_ranks


class _ReplicaWIRDatabase:
    """Read-only ``WIRDatabase`` facade over one replica of a batch database.

    Implements exactly the surface :class:`LazyWIRViews` and the LB policies
    consume (``num_ranks`` / ``view``), so per-replica trigger and workload
    policies run unchanged against the batched state.
    """

    __slots__ = ("_batch", "_replica")

    def __init__(self, batch: "BatchWIRDatabase", replica: int) -> None:
        self._batch = batch
        self._replica = replica

    @property
    def num_ranks(self) -> int:
        """PEs per replica."""
        return self._batch.num_ranks

    def view(self, rank: int) -> Dict[int, float]:
        """WIR values known by ``rank`` in this replica."""
        return self._batch.view(self._replica, rank)

    def known_values(self, rank: int) -> np.ndarray:
        """Compacted known WIRs of ``rank`` (ascending source order)."""
        return self._batch.known_values(self._replica, rank)

    def own_rate(self, rank: int) -> Optional[float]:
        """The WIR ``rank`` published for itself in this replica, if any."""
        return self._batch.own_rate(self._replica, rank)

    def complete_matrix(self) -> Optional[np.ndarray]:
        """This replica's full ``(P, P)`` view matrix, or None while partial."""
        return self._batch.complete_matrix(self._replica)

    def views(self) -> LazyWIRViews:
        """Lazily materialized per-rank views of this replica."""
        return LazyWIRViews(self)


class BatchWIRDatabase:
    """``R`` replicated WIR databases advanced in lock step.

    The batched counterpart of :class:`WIRDatabase`: dense gossip mode
    stores all replicas in one
    :class:`~repro.simcluster.gossip.BatchGossipBoard` (``(R, P, P)`` state,
    one batched dissemination round per call), sparse gossip mode
    (``gossip_config.mode == "sparse"``) keeps one memory-bounded
    :class:`~repro.simcluster.gossip.SparseGossipBoard` per replica
    (``O(R * P * view_size)`` total), and instant mode keeps an ``(R, P)``
    value matrix.  Each replica consumes its own seed exactly like a solo
    database, so replica ``r`` is bit-identical to
    ``WIRDatabase(P, seed=seeds[r])`` under the same config.
    """

    def __init__(
        self,
        num_ranks: int,
        seeds: Sequence[SeedLike],
        *,
        use_gossip: bool = True,
        gossip_config: Optional["GossipConfig"] = None,
    ) -> None:
        check_positive_int(num_ranks, "num_ranks")
        if len(seeds) == 0:
            raise ValueError("seeds must name at least one replica")
        self.num_ranks = num_ranks
        self.num_replicas = len(seeds)
        self.use_gossip = use_gossip
        self.gossip_config = gossip_config
        self._board = None
        self._sparse_boards: Optional[List[SparseGossipBoard]] = None
        if use_gossip:
            if gossip_config is not None and gossip_config.mode == "sparse":
                self._sparse_boards = [
                    SparseGossipBoard(num_ranks, config=gossip_config, seed=s)
                    for s in seeds
                ]
            else:
                self._board = BatchGossipBoard(
                    num_ranks, seeds, config=gossip_config
                )
        self._instant_values = np.zeros((self.num_replicas, num_ranks), dtype=float)
        self._instant_known = np.zeros((self.num_replicas, num_ranks), dtype=bool)

    # ------------------------------------------------------------------
    def publish_all(self, wirs: np.ndarray) -> None:
        """Every rank of every replica publishes its WIR; ``wirs`` is (R, P)."""
        wirs = np.asarray(wirs, dtype=float)
        expected = (self.num_replicas, self.num_ranks)
        if wirs.shape != expected:
            raise ValueError(
                f"wirs must be (replicas, ranks) = {expected}, got {wirs.shape}"
            )
        if self._board is not None:
            self._board.publish_all(wirs)
        elif self._sparse_boards is not None:
            for r, board in enumerate(self._sparse_boards):
                board.publish_all(wirs[r])
        else:
            np.copyto(self._instant_values, wirs)
            self._instant_known[:] = True

    def disseminate(self) -> None:
        """One gossip round across every replica (no-op in instant mode)."""
        if self._board is not None:
            self._board.step()
        elif self._sparse_boards is not None:
            for board in self._sparse_boards:
                board.step()

    def view(self, replica: int, rank: int) -> Dict[int, float]:
        """WIR values known by ``rank`` of ``replica``."""
        if self._board is not None:
            return self._board.local_view(replica, rank)
        if self._sparse_boards is not None:
            self._check_indices(replica, rank)
            return self._sparse_boards[replica].local_view(rank)
        if not 0 <= replica < self.num_replicas:
            raise ValueError(f"replica {replica} outside [0, {self.num_replicas})")
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} outside [0, {self.num_ranks})")
        known = np.flatnonzero(self._instant_known[replica])
        row = self._instant_values[replica]
        return {int(r): float(row[r]) for r in known}

    def known_values(self, replica: int, rank: int) -> np.ndarray:
        """Compacted known WIRs of one rank (ascending source order)."""
        if self._board is not None:
            return self._board.known_values_row(replica, rank)
        self._check_indices(replica, rank)
        if self._sparse_boards is not None:
            return self._sparse_boards[replica].known_values_row(rank)
        return self._instant_values[replica][self._instant_known[replica]]

    def own_rate(self, replica: int, rank: int) -> Optional[float]:
        """The WIR ``rank`` of ``replica`` published for itself, if any."""
        if self._board is not None:
            return self._board.own_value(replica, rank)
        self._check_indices(replica, rank)
        if self._sparse_boards is not None:
            return self._sparse_boards[replica].own_value(rank)
        if not self._instant_known[replica, rank]:
            return None
        return float(self._instant_values[replica, rank])

    def complete_matrix(self, replica: int) -> Optional[np.ndarray]:
        """One replica's full view matrix, or None while partial (read-only)."""
        if self._board is not None:
            return self._board.complete_matrix(replica)
        self._check_indices(replica, 0)
        if self._sparse_boards is not None:
            return self._sparse_boards[replica].complete_matrix()
        if not self._instant_known[replica].all():
            return None
        return np.broadcast_to(
            self._instant_values[replica], (self.num_ranks, self.num_ranks)
        )

    def _check_indices(self, replica: int, rank: int) -> None:
        if not 0 <= replica < self.num_replicas:
            raise ValueError(f"replica {replica} outside [0, {self.num_replicas})")
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} outside [0, {self.num_ranks})")

    def replica(self, replica: int) -> _ReplicaWIRDatabase:
        """A solo-``WIRDatabase``-shaped facade over one replica."""
        if not 0 <= replica < self.num_replicas:
            raise ValueError(f"replica {replica} outside [0, {self.num_replicas})")
        return _ReplicaWIRDatabase(self, replica)


@dataclass(frozen=True)
class OverloadDetector:
    """z-score outlier rule deciding whether a PE is overloading.

    Algorithm 1, line 19: a PE is overloading when the z-score of its WIR in
    the distribution of all known WIRs exceeds ``threshold`` (3.0 in the
    paper).  With fewer than ``min_population`` known values the detector
    reports "not overloading" (not enough evidence).
    """

    threshold: float = 3.0
    min_population: int = 2

    def __post_init__(self) -> None:
        check_positive(self.threshold, "threshold")
        check_positive_int(self.min_population, "min_population")

    def is_overloading(self, own_rate: float, all_rates: Sequence[float]) -> bool:
        """Apply the z-score rule to one PE."""
        rates = list(all_rates)
        if len(rates) < self.min_population:
            return False
        return zscore(own_rate, rates) >= self.threshold

    def overloading_ranks(self, rates_by_rank: Dict[int, float]) -> List[int]:
        """All ranks flagged as overloading within a common view.

        The population statistics are computed once and applied to every
        rank (same floats as per-rank :meth:`is_overloading` calls, which
        would recompute the identical mean/std ``P`` times).
        """
        values = list(rates_by_rank.values())
        if len(values) < self.min_population:
            return []
        pop = np.asarray(values, dtype=float)
        mean = float(pop.mean())
        std = float(pop.std())
        if std == 0.0:
            # zscore defines a constant population as all-zero scores, and
            # the threshold is strictly positive.
            return []
        return [
            rank
            for rank, rate in sorted(rates_by_rank.items())
            if (float(rate) - mean) / std >= self.threshold
        ]

    def overloading_count(self, rates: "np.ndarray") -> int:
        """Number of overloading entries within one common view, vectorized.

        ``rates`` is a compacted value array (one rank's view); the count
        equals ``len(overloading_ranks(...))`` on the corresponding dict --
        same mean/std, same per-entry z comparison -- without building it.
        """
        if rates.size < self.min_population:
            return 0
        mean = rates.mean()
        std = rates.std()
        if std == 0.0:
            return 0
        return int(np.count_nonzero((rates - mean) / std >= self.threshold))

    def overloading_mask_from_views(self, matrix: "np.ndarray") -> "np.ndarray":
        """Per-rank overload flags from a complete ``(P, P)`` view matrix.

        Row ``r`` of ``matrix`` is the full WIR view of rank ``r``; flag
        ``r`` answers "does rank ``r`` consider *itself* overloading within
        its own view" -- the per-rank rule of Algorithm 1 for every rank in
        one shot.  Row-wise reductions along the contiguous last axis are
        bitwise identical to reducing each row separately, so the flags
        match ``P`` scalar :meth:`is_overloading` calls exactly.
        """
        num = matrix.shape[0]
        if matrix.shape[1] < self.min_population:
            return np.zeros(num, dtype=bool)
        means = matrix.mean(axis=1)
        stds = matrix.std(axis=1)
        own = np.diagonal(matrix)
        safe = np.where(stds == 0.0, 1.0, stds)
        z = np.where(stds == 0.0, 0.0, (own - means) / safe)
        return z >= self.threshold
