"""String-keyed registry of LB workload policies, triggers and policy pairs.

Before this registry existed, every layer that needed to turn a policy
*name* into policy *objects* carried its own if/else ladder: the campaign
spec (``PolicySpec.make_policies``), the Figure 4 driver
(``run_erosion_case``) and the CLI each hard-coded the mapping from
``"standard"`` / ``"ulba"`` / ``"ulba-dynamic"`` to
:class:`~repro.lb.standard.StandardPolicy`,
:class:`~repro.lb.ulba.ULBAPolicy`,
:class:`~repro.lb.dynamic_alpha.DynamicAlphaULBAPolicy` and their matching
triggers.  This module is the single home of that mapping: a
:class:`~repro.api.config.PolicyConfig` (or any caller) resolves a name plus
a flat parameter dict into fresh policy objects, and downstream studies can
:func:`register_policy_pair` their own variants without touching the
campaign engine, the experiments or the CLI.

Three registries are kept:

* **policies** -- workload policies alone (``make_policy``);
* **triggers** -- trigger policies alone (``make_trigger``);
* **pairs** -- the (workload policy, trigger policy) combinations the paper
  evaluates (``make_policy_pair``), which is what the campaign grid, the
  erosion experiments and :class:`repro.api.session.Session` consume.

All parameters are plain scalars (JSON-serializable), so a registered name
plus its parameter dict is a complete, shippable description of a policy.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, List, Optional, Tuple

from repro.lb.adaptive import (
    DegradationTrigger,
    MenonIntervalTrigger,
    NeverTrigger,
    PeriodicTrigger,
    ULBADegradationTrigger,
)
from repro.lb.base import TriggerPolicy, WorkloadPolicy
from repro.lb.dynamic_alpha import DynamicAlphaULBAPolicy
from repro.lb.standard import StandardPolicy
from repro.lb.ulba import ULBAPolicy
from repro.lb.wir import OverloadDetector

__all__ = [
    "available_policies",
    "available_policy_pairs",
    "available_triggers",
    "make_policy",
    "make_policy_pair",
    "make_trigger",
    "policy_pair_accepts",
    "register_policy",
    "register_policy_pair",
    "register_trigger",
    "unregister_policy",
    "unregister_policy_pair",
    "unregister_trigger",
]

#: A factory building a fresh workload policy from scalar parameters.
PolicyFactory = Callable[..., WorkloadPolicy]
#: A factory building a fresh trigger policy from scalar parameters.
TriggerFactory = Callable[..., TriggerPolicy]
#: A factory building a fresh (workload, trigger) pair from scalar parameters.
PairFactory = Callable[..., Tuple[WorkloadPolicy, TriggerPolicy]]

_POLICIES: Dict[str, PolicyFactory] = {}
_TRIGGERS: Dict[str, TriggerFactory] = {}
_PAIRS: Dict[str, PairFactory] = {}


def _register(table: Dict[str, Callable], kind: str, name: str, factory, replace: bool):
    if not name or name != name.lower():
        raise ValueError(f"{kind} names must be non-empty lowercase, got {name!r}")
    if not replace and name in table:
        raise ValueError(f"{kind} {name!r} is already registered")
    table[name] = factory
    return factory


def _lookup(table: Dict[str, Callable], kind: str, name: str) -> Callable:
    try:
        return table[name]
    except KeyError:
        known = ", ".join(sorted(table)) or "(none registered)"
        raise KeyError(f"unknown {kind} {name!r}; registered: {known}") from None


def _build(table: Dict[str, Callable], kind: str, name: str, params: dict):
    factory = _lookup(table, kind, name)
    try:
        return factory(**params)
    except TypeError as exc:
        # A wrong/unknown keyword surfaces as TypeError; re-raise as a
        # ValueError naming the policy so config validation errors read well.
        raise ValueError(f"invalid parameters {params!r} for {kind} {name!r}: {exc}") from exc


# ----------------------------------------------------------------------
# Registration API.
# ----------------------------------------------------------------------
def register_policy(name: str, factory: PolicyFactory, *, replace: bool = False) -> PolicyFactory:
    """Register a workload-policy factory under ``name``.

    The factory is called with the keyword parameters given to
    :func:`make_policy` and must return a fresh
    :class:`~repro.lb.base.WorkloadPolicy`.  Duplicate names raise
    :class:`ValueError` unless ``replace`` is set.
    """
    return _register(_POLICIES, "workload policy", name, factory, replace)


def register_trigger(name: str, factory: TriggerFactory, *, replace: bool = False) -> TriggerFactory:
    """Register a trigger-policy factory under ``name`` (see :func:`register_policy`)."""
    return _register(_TRIGGERS, "trigger policy", name, factory, replace)


def register_policy_pair(name: str, factory: PairFactory, *, replace: bool = False) -> PairFactory:
    """Register a (workload policy, trigger policy) pair factory under ``name``.

    Pairs are what the campaign grid, :class:`repro.api.config.PolicyConfig`
    and :class:`repro.api.session.Session` resolve; registering a pair makes
    the name usable in campaign specs, run configs and on the command line.

    Example
    -------
    >>> from repro.lb.registry import (
    ...     make_policy_pair, register_policy_pair, unregister_policy_pair,
    ... )
    >>> from repro.lb.standard import StandardPolicy
    >>> from repro.lb.adaptive import PeriodicTrigger
    >>> _ = register_policy_pair(
    ...     "every-10", lambda: (StandardPolicy(), PeriodicTrigger(10))
    ... )
    >>> make_policy_pair("every-10")[1].period
    10
    >>> unregister_policy_pair("every-10")
    """
    return _register(_PAIRS, "policy pair", name, factory, replace)


def unregister_policy(name: str) -> None:
    """Remove a workload-policy factory (primarily for tests)."""
    _POLICIES.pop(name, None)


def unregister_trigger(name: str) -> None:
    """Remove a trigger-policy factory (primarily for tests)."""
    _TRIGGERS.pop(name, None)


def unregister_policy_pair(name: str) -> None:
    """Remove a policy-pair factory (primarily for tests)."""
    _PAIRS.pop(name, None)


# ----------------------------------------------------------------------
# Resolution API.
# ----------------------------------------------------------------------
def make_policy(name: str, **params) -> WorkloadPolicy:
    """Build a fresh workload policy by registry name.

    Unknown names raise :class:`KeyError` listing the registered names;
    invalid parameters raise :class:`ValueError`.
    """
    policy = _build(_POLICIES, "workload policy", name, params)
    if not isinstance(policy, WorkloadPolicy):
        raise TypeError(
            f"factory for workload policy {name!r} returned {type(policy).__name__}, "
            "expected a WorkloadPolicy"
        )
    return policy


def make_trigger(name: str, **params) -> TriggerPolicy:
    """Build a fresh trigger policy by registry name (see :func:`make_policy`)."""
    trigger = _build(_TRIGGERS, "trigger policy", name, params)
    if not isinstance(trigger, TriggerPolicy):
        raise TypeError(
            f"factory for trigger policy {name!r} returned {type(trigger).__name__}, "
            "expected a TriggerPolicy"
        )
    return trigger


def make_policy_pair(name: str, **params) -> Tuple[WorkloadPolicy, TriggerPolicy]:
    """Build a fresh (workload policy, trigger policy) pair by registry name.

    This is the resolution path of ``PolicySpec.make_policies`` (campaign
    grid), :meth:`repro.api.config.PolicyConfig.resolve` and the Figure 4 /
    Figure 5 erosion drivers.

    Example
    -------
    >>> from repro.lb.registry import make_policy_pair
    >>> workload, trigger = make_policy_pair("ulba", alpha=0.3)
    >>> workload.name, trigger.name
    ('ulba', 'ulba-degradation')
    """
    pair = _build(_PAIRS, "policy pair", name, params)
    if (
        not isinstance(pair, tuple)
        or len(pair) != 2
        or not isinstance(pair[0], WorkloadPolicy)
        or not isinstance(pair[1], TriggerPolicy)
    ):
        raise TypeError(
            f"factory for policy pair {name!r} must return a "
            "(WorkloadPolicy, TriggerPolicy) tuple"
        )
    return pair


def policy_pair_accepts(name: str, param_name: str) -> bool:
    """True when the pair factory of ``name`` accepts keyword ``param_name``.

    Callers that forward optional parameters to arbitrary registered pairs
    (e.g. the campaign grid's ``alpha``) use this to skip parameters a
    custom factory does not declare, instead of failing on them.  Factories
    taking ``**kwargs`` accept everything; unknown names raise
    :class:`KeyError`.
    """
    factory = _lookup(_PAIRS, "policy pair", name)
    try:
        parameters = inspect.signature(factory).parameters.values()
    except (TypeError, ValueError):  # builtins without introspectable signature
        return False
    for parameter in parameters:
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return True
        if parameter.name == param_name and parameter.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            return True
    return False


def available_policies() -> List[str]:
    """Sorted names of the registered workload policies."""
    return sorted(_POLICIES)


def available_triggers() -> List[str]:
    """Sorted names of the registered trigger policies."""
    return sorted(_TRIGGERS)


def available_policy_pairs() -> List[str]:
    """Sorted names of the registered policy pairs."""
    return sorted(_PAIRS)


# ----------------------------------------------------------------------
# Built-in catalog.
# ----------------------------------------------------------------------
def _detector(threshold: Optional[float]) -> Optional[OverloadDetector]:
    return None if threshold is None else OverloadDetector(threshold=float(threshold))


def _standard_policy() -> WorkloadPolicy:
    return StandardPolicy()


def _ulba_policy(alpha: float = 0.4, threshold: Optional[float] = None, majority_guard: float = 0.5) -> WorkloadPolicy:
    detector = _detector(threshold)
    if detector is None:
        return ULBAPolicy(alpha=alpha, majority_guard=majority_guard)
    return ULBAPolicy(alpha=alpha, detector=detector, majority_guard=majority_guard)


def _ulba_dynamic_policy(
    alpha: float = 0.4, strategy: str = "interval", horizon: int = 100
) -> WorkloadPolicy:
    return DynamicAlphaULBAPolicy(strategy=strategy, fallback_alpha=alpha, horizon=horizon)


def _never_trigger() -> TriggerPolicy:
    return NeverTrigger()


def _periodic_trigger(period: int = 10) -> TriggerPolicy:
    return PeriodicTrigger(period=period)


def _menon_trigger(minimum_interval: int = 1) -> TriggerPolicy:
    return MenonIntervalTrigger(minimum_interval=minimum_interval)


def _degradation_trigger(cost_margin: float = 1.0) -> TriggerPolicy:
    return DegradationTrigger(cost_margin=cost_margin)


def _ulba_degradation_trigger(
    alpha: float = 0.4, threshold: Optional[float] = None, cost_margin: float = 1.0
) -> TriggerPolicy:
    detector = _detector(threshold)
    if detector is None:
        return ULBADegradationTrigger(alpha, cost_margin=cost_margin)
    return ULBADegradationTrigger(alpha, detector=detector, cost_margin=cost_margin)


def _standard_pair() -> Tuple[WorkloadPolicy, TriggerPolicy]:
    return StandardPolicy(), DegradationTrigger()


def _ulba_pair(alpha: float = 0.4, threshold: Optional[float] = None) -> Tuple[WorkloadPolicy, TriggerPolicy]:
    if threshold is None:
        return ULBAPolicy(alpha=alpha), ULBADegradationTrigger(alpha=alpha)
    # One shared detector, as in the threshold ablation, so the policy and
    # its trigger always agree on which PEs are overloading.
    detector = OverloadDetector(threshold=float(threshold))
    return (
        ULBAPolicy(alpha=alpha, detector=detector),
        ULBADegradationTrigger(alpha=alpha, detector=detector),
    )


def _ulba_dynamic_pair(alpha: float = 0.4) -> Tuple[WorkloadPolicy, TriggerPolicy]:
    return (
        DynamicAlphaULBAPolicy(fallback_alpha=alpha),
        ULBADegradationTrigger(alpha=alpha),
    )


register_policy("standard", _standard_policy)
register_policy("ulba", _ulba_policy)
register_policy("ulba-dynamic", _ulba_dynamic_policy)

register_trigger("never", _never_trigger)
register_trigger("periodic", _periodic_trigger)
register_trigger("menon-interval", _menon_trigger)
register_trigger("degradation", _degradation_trigger)
register_trigger("ulba-degradation", _ulba_degradation_trigger)

register_policy_pair("standard", _standard_pair)
register_policy_pair("ulba", _ulba_pair)
register_policy_pair("ulba-dynamic", _ulba_dynamic_pair)
