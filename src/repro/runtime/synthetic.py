"""Synthetic striped application with deterministic linear workload growth.

This application is the runnable analogue of the analytical model of
Section II-C: every column gains a small uniform amount of load per
iteration, and the columns of a few designated *hot regions* additionally
gain a larger amount -- so the stripes covering a hot region overload at a
constant rate, exactly like the ``N`` overloading PEs of the model.  Being
deterministic and cheap, it is used by the integration tests, by the
quickstart example and by micro-benchmarks; the erosion application of
:mod:`repro.erosion` is the stochastic, paper-faithful workload.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.utils.validation import check_non_negative, check_positive, check_positive_int

__all__ = ["SyntheticGrowthApplication"]


class SyntheticGrowthApplication:
    """Striped application whose column loads grow linearly.

    Parameters
    ----------
    num_columns:
        Number of domain columns.
    initial_load_per_column:
        Starting workload weight of every column.
    uniform_growth:
        Load added to every column at each iteration (the model's ``a``
        spread over the columns).
    hot_regions:
        Column ranges ``(start, stop)`` that overload; each hot column gains
        ``hot_growth`` extra load per iteration (the model's ``m``).
    hot_growth:
        Extra per-column growth inside hot regions.
    flop_per_load_unit:
        FLOP charged per unit of column load.
    """

    def __init__(
        self,
        num_columns: int,
        *,
        initial_load_per_column: float = 100.0,
        uniform_growth: float = 0.1,
        hot_regions: Sequence[Tuple[int, int]] = (),
        hot_growth: float = 5.0,
        flop_per_load_unit: float = 1.0e6,
    ) -> None:
        check_positive_int(num_columns, "num_columns")
        check_positive(initial_load_per_column, "initial_load_per_column")
        check_non_negative(uniform_growth, "uniform_growth")
        check_non_negative(hot_growth, "hot_growth")
        check_positive(flop_per_load_unit, "flop_per_load_unit")

        self._loads = np.full(num_columns, float(initial_load_per_column))
        self.uniform_growth = float(uniform_growth)
        self.hot_growth = float(hot_growth)
        self.flop_per_load_unit = float(flop_per_load_unit)
        self._hot_mask = np.zeros(num_columns, dtype=bool)
        for start, stop in hot_regions:
            if not 0 <= start <= stop <= num_columns:
                raise ValueError(
                    f"hot region ({start}, {stop}) outside [0, {num_columns}]"
                )
            self._hot_mask[start:stop] = True
        self._iteration = 0

    # ------------------------------------------------------------------
    @property
    def num_columns(self) -> int:
        """Number of domain columns."""
        return self._loads.size

    @property
    def iteration(self) -> int:
        """Number of dynamics steps performed."""
        return self._iteration

    @property
    def hot_columns(self) -> np.ndarray:
        """Indices of the overloading (hot) columns."""
        return np.flatnonzero(self._hot_mask)

    def column_loads(self) -> np.ndarray:
        """Current per-column workload (copy)."""
        return self._loads.copy()

    def total_load(self) -> float:
        """Total workload of the domain."""
        return float(self._loads.sum())

    def advance(self) -> None:
        """Apply one iteration of linear growth."""
        self._loads += self.uniform_growth
        self._loads[self._hot_mask] += self.hot_growth
        self._iteration += 1
