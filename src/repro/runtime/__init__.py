"""Runtime layer: the Algorithm 1 application skeleton on the virtual cluster.

The runtime binds together an application (anything exposing per-column
workloads and a dynamics step -- the erosion application of
:mod:`repro.erosion` or the synthetic growth application used in tests), the
virtual cluster, the WIR database, a triggering policy and a workload policy,
and executes the iterative skeleton of Algorithm 1:

1. compute the iteration (bulk-synchronous, per-PE FLOP from stripe loads);
2. advance the application dynamics;
3. publish and disseminate the per-PE workload increase rates;
4. track the performance degradation with respect to the iteration right
   after the last LB step (median-of-3 smoothing, Zhai-style accumulation);
5. when the trigger fires, run the centralized load balancer (Algorithm 2)
   and reset the degradation tracking.

Modules
-------
* :mod:`repro.runtime.degradation` -- the Zhai-style degradation tracker.
* :mod:`repro.runtime.skeleton` -- the :class:`IterativeRunner` driver and
  the :class:`StripedApplication` protocol.
* :mod:`repro.runtime.synthetic` -- a deterministic synthetic application
  with linear per-column growth, used by tests, examples and benchmarks.
* :mod:`repro.runtime.report` -- run reports comparing policies.
* :mod:`repro.runtime.reference` -- frozen pre-vectorization loop core,
  kept as the golden-equivalence reference and benchmark baseline.
"""

from repro.runtime.degradation import DegradationTracker
from repro.runtime.skeleton import IterativeRunner, RunResult, StripedApplication
from repro.runtime.synthetic import SyntheticGrowthApplication
from repro.runtime.report import PolicyComparison, compare_runs

__all__ = [
    "DegradationTracker",
    "IterativeRunner",
    "PolicyComparison",
    "RunResult",
    "StripedApplication",
    "SyntheticGrowthApplication",
    "compare_runs",
]
