"""Run reports comparing load-balancing policies.

The paper's Figure 4 reports, per configuration, the running time of the
standard method and of ULBA (4a), the per-iteration average PE utilization
(4b), and in the text the reduction of the number of LB calls (62.5 % fewer
for ULBA on the 32-PE case).  :class:`PolicyComparison` packages those
numbers for a pair of runs of the same application under two policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.runtime.skeleton import RunResult
from repro.utils.stats import relative_gain

__all__ = ["PolicyComparison", "compare_runs"]


@dataclass(frozen=True)
class PolicyComparison:
    """Comparison of a baseline run against a candidate run."""

    baseline: RunResult
    candidate: RunResult

    # ------------------------------------------------------------------
    @property
    def gain(self) -> float:
        """Relative time gain of the candidate (positive = faster)."""
        return relative_gain(self.baseline.total_time, self.candidate.total_time)

    @property
    def lb_call_reduction(self) -> float:
        """Relative reduction of LB calls (positive = fewer calls).

        Defined as ``1 - candidate_calls / baseline_calls``; 0 when the
        baseline performed no LB call.
        """
        if self.baseline.num_lb_calls == 0:
            return 0.0
        return 1.0 - self.candidate.num_lb_calls / self.baseline.num_lb_calls

    @property
    def utilization_gain(self) -> float:
        """Absolute increase of the mean PE utilization."""
        return self.candidate.mean_utilization - self.baseline.mean_utilization

    def as_dict(self) -> Dict[str, float]:
        """Summary dictionary used by experiment tables."""
        return {
            "baseline_policy": self.baseline.policy_name,
            "candidate_policy": self.candidate.policy_name,
            "baseline_time": self.baseline.total_time,
            "candidate_time": self.candidate.total_time,
            "gain": self.gain,
            "baseline_lb_calls": self.baseline.num_lb_calls,
            "candidate_lb_calls": self.candidate.num_lb_calls,
            "lb_call_reduction": self.lb_call_reduction,
            "baseline_utilization": self.baseline.mean_utilization,
            "candidate_utilization": self.candidate.mean_utilization,
            "utilization_gain": self.utilization_gain,
        }


def compare_runs(baseline: RunResult, candidate: RunResult) -> PolicyComparison:
    """Build a :class:`PolicyComparison` (thin convenience constructor)."""
    return PolicyComparison(baseline=baseline, candidate=candidate)
