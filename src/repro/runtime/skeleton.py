"""The iterative application skeleton (Algorithm 1) on the virtual cluster.

:class:`IterativeRunner` is the reproduction's equivalent of the MPI main
loop of the paper's evaluation application: it executes a *striped*
application (anything implementing :class:`StripedApplication`) for a fixed
number of iterations, charging per-PE compute time on the virtual cluster,
maintaining the WIR database, tracking degradation and invoking the
centralized load balancer (Algorithm 2) when the trigger policy fires.

The same runner serves the standard method and ULBA -- only the injected
policies differ -- which mirrors the paper's statement that both
implementations share the same centralized LB technique.

For replica-averaged studies (the unit of work of every paper figure),
:class:`repro.batch.BatchRunner` executes ``R`` seeded instances of this
loop in one vectorized pass over ``(R, P)`` state; replica ``r`` of a batch
is bit-identical to running this runner solo with seed ``r``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Protocol, runtime_checkable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.profiler import StageProfile, StageProfiler

from repro.lb.adaptive import DegradationTrigger
from repro.lb.base import LBContext, TriggerPolicy, WorkloadPolicy
from repro.lb.centralized import CentralizedLoadBalancer, LBStepReport
from repro.lb.standard import StandardPolicy
from repro.lb.wir import WIRDatabase, WIREstimateArray
from repro.partitioning.stripe import StripePartition, StripePartitioner
from repro.runtime.degradation import DegradationTracker
from repro.simcluster.cluster import VirtualCluster
from repro.simcluster.gossip import GossipConfig
from repro.simcluster.tracing import ClusterTrace
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_non_negative, check_positive, check_positive_int

__all__ = [
    "StripedApplication",
    "RunResult",
    "IterativeRunner",
    "initial_lb_cost_prior",
]


def initial_lb_cost_prior(
    total_flop: float, num_pes: int, pe_speed: float
) -> float:
    """Standard LB-cost prior used before the first measured LB step.

    Half of one perfectly balanced per-PE iteration time: large enough to
    keep the degradation trigger from firing on noise in the first
    iterations, small enough not to postpone the first genuine LB call.
    Shared by the erosion experiments, the scenario layer and the campaign
    runner so they all assume the same prior.
    """
    check_non_negative(total_flop, "total_flop")
    check_positive_int(num_pes, "num_pes")
    check_positive(pe_speed, "pe_speed")
    return 0.5 * total_flop / num_pes / pe_speed


@runtime_checkable
class StripedApplication(Protocol):
    """What the runner needs from an application.

    The application owns a 1-D-decomposable workload (per-column loads) and
    a dynamics step; it knows nothing about PEs, partitions or load
    balancing.
    """

    #: FLOP charged per unit of column load (converts loads to compute work).
    flop_per_load_unit: float

    @property
    def num_columns(self) -> int:
        """Number of domain columns."""
        ...

    def column_loads(self) -> np.ndarray:
        """Current workload weight of every column."""
        ...

    def advance(self) -> None:
        """Advance the application dynamics by one iteration."""
        ...


@dataclass
class RunResult:
    """Outcome of one :meth:`IterativeRunner.run`."""

    #: Execution trace (iteration times, utilization, LB events).
    trace: ClusterTrace
    #: Reports of every LB step that was executed.
    lb_reports: list[LBStepReport] = field(default_factory=list)
    #: Name of the workload policy that was used.
    policy_name: str = ""
    #: Name of the trigger policy that was used.
    trigger_name: str = ""
    #: Wall-clock stage attribution of the run
    #: (:class:`~repro.obs.profiler.StageProfile`); ``None`` unless the
    #: runner was built with a profiler.
    profile: "Optional[StageProfile]" = None

    # ------------------------------------------------------------------
    @property
    def total_time(self) -> float:
        """Total virtual time of the run (seconds)."""
        return self.trace.total_time

    @property
    def num_lb_calls(self) -> int:
        """Number of LB invocations."""
        return self.trace.num_lb_calls

    @property
    def mean_utilization(self) -> float:
        """Time-weighted average PE utilization."""
        return self.trace.mean_utilization()

    def utilization_series(self) -> np.ndarray:
        """Per-iteration average PE utilization (Fig. 4b series)."""
        return self.trace.utilization_series()

    def summary(self) -> dict:
        """Plain-dictionary summary for experiment tables."""
        info = self.trace.summary()
        info.update(
            policy=self.policy_name,
            trigger=self.trigger_name,
        )
        return info


class IterativeRunner:
    """Algorithm 1 driver binding an application to the virtual cluster.

    Parameters
    ----------
    cluster:
        Virtual cluster to run on (one stripe per PE).
    application:
        The striped application.
    workload_policy:
        How to redistribute work at LB steps (standard / ULBA).
    trigger_policy:
        When to call the load balancer; defaults to the Zhai degradation
        trigger used in the paper's numerical study.
    use_gossip:
        Whether WIR values propagate by gossip (one step per iteration) or
        instantly.
    gossip_config:
        Tuning of the gossip substrate
        (:class:`~repro.simcluster.gossip.GossipConfig`): fanout, push
        topology, and -- through ``mode="sparse"`` -- the memory-bounded
        board for large clusters.  ``None`` keeps the historical dense
        defaults (bit-identical seeded runs).
    wir_smoothing:
        Smoothing factor of the per-PE WIR estimators.
    initial_lb_cost_estimate:
        LB cost assumed before the first LB call provides a measurement
        (seconds); keeps the degradation trigger from firing on the very
        first nonzero degradation when set > 0.
    seed:
        Randomness for the gossip peer selection.
    on_iteration:
        Optional observer called as ``on_iteration(iteration, elapsed)``
        after every completed iteration (the session facade's event bus
        plugs in here).  ``None`` (the default) adds no per-iteration work.
    on_lb_step:
        Optional observer called as ``on_lb_step(iteration, report)`` after
        every executed LB step.
    profiler:
        Optional :class:`~repro.obs.profiler.StageProfiler` timing the
        named hot-loop stages (``compute_step`` / ``advance`` /
        ``stripe_sum`` / ``wir_update`` / ``gossip_round`` / ``lb_decide``
        / ``lb_apply``).  ``None`` (the default) leaves the hot loop
        untouched apart from one ``is not None`` check per stage.
    """

    def __init__(
        self,
        cluster: VirtualCluster,
        application: StripedApplication,
        *,
        workload_policy: Optional[WorkloadPolicy] = None,
        trigger_policy: Optional[TriggerPolicy] = None,
        use_gossip: bool = True,
        gossip_config: Optional[GossipConfig] = None,
        wir_smoothing: float = 0.5,
        initial_lb_cost_estimate: float = 0.0,
        partition_flop_per_column: float = 50.0,
        bytes_per_load_unit: float = 800.0,
        seed: SeedLike = None,
        on_iteration: Optional[Callable[[int, float], None]] = None,
        on_lb_step: Optional[Callable[[int, LBStepReport], None]] = None,
        profiler: "Optional[StageProfiler]" = None,
    ) -> None:
        check_non_negative(initial_lb_cost_estimate, "initial_lb_cost_estimate")
        self.cluster = cluster
        self.application = application
        self._profiler = profiler
        if application.num_columns < cluster.size:
            raise ValueError(
                f"the application has {application.num_columns} columns, "
                f"fewer than the {cluster.size} PEs"
            )
        self.workload_policy = workload_policy or StandardPolicy()
        self.trigger_policy = trigger_policy or DegradationTrigger()
        self.initial_lb_cost_estimate = initial_lb_cost_estimate
        self._on_iteration = on_iteration
        self._on_lb_step = on_lb_step

        rng = ensure_rng(seed)
        self.wir_db = WIRDatabase(
            cluster.size,
            use_gossip=use_gossip,
            gossip_config=gossip_config,
            seed=rng,
        )
        self.wir_estimates = WIREstimateArray(cluster.size, smoothing=wir_smoothing)
        self.degradation = DegradationTracker()
        self.load_balancer = CentralizedLoadBalancer(
            cluster,
            self.workload_policy,
            partition_flop_per_column=partition_flop_per_column,
            bytes_per_load_unit=bytes_per_load_unit,
        )
        self.partitioner = StripePartitioner(cluster.size)
        #: Current stripe partition (uniform before the first LB call).
        self.partition: StripePartition = self.partitioner.uniform_partition(
            application.num_columns
        )
        self._last_lb_iteration = 0
        self._total_iterations: Optional[int] = None

    # ------------------------------------------------------------------
    def _stripe_loads(self, column_loads: Optional[np.ndarray] = None) -> np.ndarray:
        """Per-stripe workload sums under the current partition.

        The segmented sums are one ``np.add.reduceat`` over the partition
        boundaries (with a prefix-sum fallback for degenerate partitions
        containing empty stripes, which ``reduceat`` mishandles).
        """
        cols = (
            self.application.column_loads()
            if column_loads is None
            else column_loads
        )
        # repro: noqa[HOT003] -- boundary tuple to array once per call; partitions are small (P+1 ints)
        bounds = np.asarray(self.partition.partition.boundaries)
        starts = bounds[:-1]
        if (bounds[1:] > starts).all():
            return np.add.reduceat(cols, starts)
        # repro: noqa[HOT003] -- degenerate-partition fallback: reached only when a stripe is empty, never on the steady-state path
        prefix = np.concatenate(([0.0], np.cumsum(cols)))
        return prefix[bounds[1:]] - prefix[starts]

    def _average_lb_cost(self) -> float:
        measured = self.load_balancer.average_cost
        if measured > 0.0:
            return measured
        return self.initial_lb_cost_estimate

    def _build_context(self, iteration: int, stripe_loads: np.ndarray) -> LBContext:
        workloads = stripe_loads * self.application.flop_per_load_unit
        return LBContext(
            iteration=iteration,
            # repro: noqa[HOT002] -- LBContext's contract is a tuple of Python floats; built once per LB decision, not per iteration
            pe_workloads=tuple(workloads.tolist()),
            wir_views=self.wir_db.views(),
            last_lb_iteration=self._last_lb_iteration,
            accumulated_degradation=self.degradation.degradation,
            average_lb_cost=self._average_lb_cost(),
            pe_speed=self.cluster.pe_speed,
            total_iterations=self._total_iterations,
        )

    # ------------------------------------------------------------------
    def run(self, iterations: int) -> RunResult:
        """Execute ``iterations`` application iterations (Algorithm 1)."""
        check_positive_int(iterations, "iterations")
        self._total_iterations = iterations
        result = RunResult(
            trace=self.cluster.trace,
            policy_name=self.workload_policy.name,
            trigger_name=self.trigger_policy.name,
        )

        flop_per_load = self.application.flop_per_load_unit
        # Column loads only change in ``advance()`` and stripe sums only
        # change with them or with the partition, so both are computed once
        # per change and carried across iterations.
        column_loads = self.application.column_loads()
        stripe_loads = self._stripe_loads(column_loads)

        # Hot-loop stage attribution (repro.obs): every probe is guarded by
        # one `prof is not None` check, so the disabled default adds no
        # calls, no allocation and no branch beyond this comparison.
        prof = self._profiler
        if prof is not None:
            prof.loop_start()

        for iteration in range(iterations):
            flop_per_pe = stripe_loads * flop_per_load

            # Line 10: data movements and computation of the step.
            t0 = prof.start() if prof is not None else 0
            step = self.cluster.compute_step(flop_per_pe, iteration=iteration)  # repro: noqa[FLOW-HOT] -- the solo reference runner materializes per-PE times into the StepResult tuple (O(P) tolist); the replica-batched runner is the vectorized path
            if prof is not None:
                prof.stop("compute_step", t0)
                t0 = prof.start()

            # Application dynamics (erosion, refinement, ...).
            self.application.advance()
            if prof is not None:
                prof.stop("advance", t0)
                t0 = prof.start()

            # WIR estimation and dissemination (Section III-C): each PE
            # publishes the increase rate of its own stripe workload, all in
            # one batched estimator update.
            column_loads = self.application.column_loads()
            new_stripe_loads = self._stripe_loads(column_loads)
            if prof is not None:
                prof.stop("stripe_sum", t0)
                t0 = prof.start()
            rates = self.wir_estimates.observe(new_stripe_loads * flop_per_load)
            self.wir_db.publish_all(rates)
            if prof is not None:
                prof.stop("wir_update", t0)
                t0 = prof.start()
            self.wir_db.disseminate()
            if prof is not None:
                prof.stop("gossip_round", t0)
                t0 = prof.start()

            # Lines 11-15: degradation tracking with median smoothing.
            self.degradation.observe(step.elapsed)

            # Line 16: adaptive LB trigger.
            context = self._build_context(iteration, new_stripe_loads)
            fire = self.trigger_policy.should_balance(context)
            if prof is not None:
                prof.stop("lb_decide", t0)
            if fire:
                t0 = prof.start() if prof is not None else 0
                report = self.load_balancer.execute(  # repro: noqa[FLOW-HOT] -- LB-step cadence: runs only when the trigger fires, not per iteration
                    context,
                    column_loads,
                    current_partition=self.partition,
                )
                result.lb_reports.append(report)
                if self._on_lb_step is not None:
                    self._on_lb_step(iteration, report)
                self.partition = report.partition
                self._last_lb_iteration = iteration + 1
                self.degradation.reset()
                self.trigger_policy.notify_balanced(context)
                # Re-anchor the WIR estimators: the migration-induced jump in
                # stripe workload is not application dynamics.
                rebalanced = self._stripe_loads(column_loads)
                self.wir_estimates.reset_after_migration(rebalanced * flop_per_load)
                stripe_loads = rebalanced
                if prof is not None:
                    prof.stop("lb_apply", t0)
            else:
                stripe_loads = new_stripe_loads

            if self._on_iteration is not None:
                self._on_iteration(iteration, step.elapsed)

        if prof is not None:
            prof.loop_stop()
            result.profile = prof.profile()
        return result
