"""Zhai-style performance-degradation tracking (Algorithm 1, lines 10-16).

The adaptive criterion used by both methods in the paper's numerical study
computes, at every iteration, the *exact degradation with respect to a
reference iteration* (the one right after the last LB call):

* the per-iteration time is smoothed with the median over the current and
  the two previous iterations (line 14);
* the difference between the smoothed time and the reference time is
  accumulated (line 15);
* the load balancer is invoked once the accumulation reaches the average LB
  cost (line 16) -- plus, for ULBA, the underloading overhead.

:class:`DegradationTracker` implements the accumulation; the comparison to
the threshold lives in the trigger policies of :mod:`repro.lb.adaptive`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.utils.stats import rolling_median
from repro.utils.validation import check_positive_int

__all__ = ["BatchDegradationTracker", "DegradationTracker"]


@dataclass
class DegradationTracker:
    """Accumulator of per-iteration performance degradation.

    Parameters
    ----------
    window:
        Size of the median smoothing window (3 in the paper: the current and
        the two previous iteration times).
    """

    window: int = 3
    _reference_time: Optional[float] = field(default=None, repr=False)
    _recent_times: List[float] = field(default_factory=list, repr=False)
    _degradation: float = field(default=0.0, repr=False)
    _iterations_since_reset: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        check_positive_int(self.window, "window")

    # ------------------------------------------------------------------
    @property
    def degradation(self) -> float:
        """Accumulated degradation since the last reset, in seconds."""
        return self._degradation

    @property
    def reference_time(self) -> Optional[float]:
        """Reference iteration time (set at the first iteration after a reset)."""
        return self._reference_time

    @property
    def iterations_since_reset(self) -> int:
        """Number of iterations observed since the last reset."""
        return self._iterations_since_reset

    # ------------------------------------------------------------------
    def observe(self, iteration_time: float) -> float:
        """Record one iteration time; returns the updated degradation.

        The first observation after a reset becomes the reference time
        (Algorithm 1, lines 11-13).
        """
        if iteration_time < 0:
            raise ValueError(
                f"iteration_time must be >= 0, got {iteration_time}"
            )
        self._recent_times.append(float(iteration_time))
        if len(self._recent_times) > self.window:
            self._recent_times = self._recent_times[-self.window :]

        if self._reference_time is None:
            self._reference_time = float(iteration_time)

        smoothed = rolling_median(self._recent_times, self.window)
        self._degradation += smoothed - self._reference_time
        self._iterations_since_reset += 1
        return self._degradation

    def reset(self) -> None:
        """Reset after a LB step (Algorithm 1, lines 24-25).

        The next observed iteration becomes the new reference; the smoothing
        window is also cleared so pre-LB times do not leak into the new
        interval.
        """
        self._reference_time = None
        self._recent_times = []
        self._degradation = 0.0
        self._iterations_since_reset = 0


class BatchDegradationTracker:
    """``R`` degradation accumulators advanced with one vectorized update.

    The replica-batched runner observes every replica's iteration time at
    once; all tracker state lives in ``(R,)`` vectors and one
    :meth:`observe` performs the window-3 median smoothing and accumulation
    elementwise -- the same IEEE operations per lane as ``R`` scalar
    :class:`DegradationTracker` instances (the scalar ``rolling_median``
    fast paths for windows of 1/2/3 are pure min/max/mean arithmetic), so
    the accumulated degradations are bit-identical.  Only the paper's
    window of 3 is supported.
    """

    def __init__(self, replicas: int) -> None:
        check_positive_int(replicas, "replicas")
        self.replicas = replicas
        self.window = 3
        self._recent = np.zeros((replicas, 3), dtype=float)
        self._count = np.zeros(replicas, dtype=np.int64)
        self._reference = np.zeros(replicas, dtype=float)
        self._has_reference = np.zeros(replicas, dtype=bool)
        self._degradation = np.zeros(replicas, dtype=float)

    # ------------------------------------------------------------------
    @property
    def degradations(self) -> np.ndarray:
        """Accumulated degradation per replica since its last reset (s)."""
        return self._degradation

    def degradation_of(self, replica: int) -> float:
        """Accumulated degradation of one replica (seconds)."""
        return float(self._degradation[replica])

    def observe(self, iteration_times: np.ndarray) -> np.ndarray:
        """Record every replica's iteration time; returns the degradations."""
        times = np.asarray(iteration_times, dtype=float)
        if times.shape != (self.replicas,):
            raise ValueError(
                f"iteration_times must have shape ({self.replicas},), "
                f"got {times.shape}"
            )
        if (times < 0).any():
            raise ValueError("iteration_times must all be >= 0")
        # Slide the window (column 2 = newest observation).
        self._recent[:, 0] = self._recent[:, 1]
        self._recent[:, 1] = self._recent[:, 2]
        self._recent[:, 2] = times
        np.copyto(self._reference, times, where=~self._has_reference)
        self._has_reference[:] = True
        self._count += 1

        a = self._recent[:, 0]
        b = self._recent[:, 1]
        c = self._recent[:, 2]
        # rolling_median's scalar fast paths, elementwise per lane.
        median3 = np.maximum(np.minimum(a, b), np.minimum(np.maximum(a, b), c))
        median2 = (b + c) / 2.0
        smoothed = np.where(
            self._count >= 3, median3, np.where(self._count == 2, median2, c)
        )
        self._degradation += smoothed - self._reference
        return self._degradation

    def reset_replica(self, replica: int) -> None:
        """Reset one replica after its LB step (next time = new reference)."""
        if not 0 <= replica < self.replicas:
            raise ValueError(f"replica {replica} outside [0, {self.replicas})")
        self._recent[replica] = 0.0
        self._count[replica] = 0
        self._reference[replica] = 0.0
        self._has_reference[replica] = False
        self._degradation[replica] = 0.0
