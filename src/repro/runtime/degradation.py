"""Zhai-style performance-degradation tracking (Algorithm 1, lines 10-16).

The adaptive criterion used by both methods in the paper's numerical study
computes, at every iteration, the *exact degradation with respect to a
reference iteration* (the one right after the last LB call):

* the per-iteration time is smoothed with the median over the current and
  the two previous iterations (line 14);
* the difference between the smoothed time and the reference time is
  accumulated (line 15);
* the load balancer is invoked once the accumulation reaches the average LB
  cost (line 16) -- plus, for ULBA, the underloading overhead.

:class:`DegradationTracker` implements the accumulation; the comparison to
the threshold lives in the trigger policies of :mod:`repro.lb.adaptive`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.utils.stats import rolling_median
from repro.utils.validation import check_positive_int

__all__ = ["DegradationTracker"]


@dataclass
class DegradationTracker:
    """Accumulator of per-iteration performance degradation.

    Parameters
    ----------
    window:
        Size of the median smoothing window (3 in the paper: the current and
        the two previous iteration times).
    """

    window: int = 3
    _reference_time: Optional[float] = field(default=None, repr=False)
    _recent_times: List[float] = field(default_factory=list, repr=False)
    _degradation: float = field(default=0.0, repr=False)
    _iterations_since_reset: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        check_positive_int(self.window, "window")

    # ------------------------------------------------------------------
    @property
    def degradation(self) -> float:
        """Accumulated degradation since the last reset, in seconds."""
        return self._degradation

    @property
    def reference_time(self) -> Optional[float]:
        """Reference iteration time (set at the first iteration after a reset)."""
        return self._reference_time

    @property
    def iterations_since_reset(self) -> int:
        """Number of iterations observed since the last reset."""
        return self._iterations_since_reset

    # ------------------------------------------------------------------
    def observe(self, iteration_time: float) -> float:
        """Record one iteration time; returns the updated degradation.

        The first observation after a reset becomes the reference time
        (Algorithm 1, lines 11-13).
        """
        if iteration_time < 0:
            raise ValueError(
                f"iteration_time must be >= 0, got {iteration_time}"
            )
        self._recent_times.append(float(iteration_time))
        if len(self._recent_times) > self.window:
            self._recent_times = self._recent_times[-self.window :]

        if self._reference_time is None:
            self._reference_time = float(iteration_time)

        smoothed = rolling_median(self._recent_times, self.window)
        self._degradation += smoothed - self._reference_time
        self._iterations_since_reset += 1
        return self._degradation

    def reset(self) -> None:
        """Reset after a LB step (Algorithm 1, lines 24-25).

        The next observed iteration becomes the new reference; the smoothing
        window is also cleared so pre-LB times do not leak into the new
        interval.
        """
        self._reference_time = None
        self._recent_times = []
        self._degradation = 0.0
        self._iterations_since_reset = 0
