"""Frozen loop-based reference implementation of the simulation core.

This module preserves the pre-vectorization (object-loop) implementations of
the gossip board, the virtual cluster and the Algorithm 1 runner, exactly as
they executed before the array-based rewrite of :mod:`repro.simcluster` and
:mod:`repro.runtime.skeleton`.  It exists for two purposes:

* **golden equivalence tests** -- seeded runs of the vectorized core must
  produce the same trace totals and the same LB-call iterations as this
  reference (``tests/runtime/test_golden_equivalence.py``);
* **benchmark baseline** -- ``benchmarks/test_bench_core.py`` measures the
  vectorized core's speedup against this reference.

Do not "optimize" this module: its value is being a faithful, slow copy.

The only intentional deviation is RNG handling in the gossip board.  The
historical board drew per-rank ``rng.choice`` samples (``P`` draws per
round); the vectorized board performs one batched draw per round
(:func:`repro.simcluster.gossip.select_push_targets`), which necessarily
changes the random stream.  :class:`ReferenceGossipBoard` therefore supports
both: by default it reproduces the historical per-rank draws, and with
``batched_targets=True`` it consumes the shared batched selection so that
end-to-end runs are comparable draw-for-draw with the vectorized core.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.lb.adaptive import DegradationTrigger
from repro.lb.base import LBContext, TriggerPolicy, WorkloadPolicy
from repro.lb.centralized import LBStepReport
from repro.lb.standard import StandardPolicy
from repro.lb.wir import WIREstimate
from repro.partitioning.stripe import StripePartition
from repro.partitioning.weighted import Partition1D
from repro.runtime.skeleton import RunResult, StripedApplication
from repro.simcluster.clock import synchronize
from repro.simcluster.comm import CommCostModel, SimCommunicator
from repro.simcluster.gossip import GossipConfig, select_push_targets
from repro.simcluster.pe import ProcessingElement
from repro.simcluster.tracing import ClusterTrace
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_non_negative, check_positive, check_positive_int

__all__ = [
    "ReferenceCentralizedLoadBalancer",
    "ReferenceDegradationTracker",
    "ReferenceGossipBoard",
    "ReferenceIterativeRunner",
    "ReferenceStripePartitioner",
    "ReferenceVirtualCluster",
    "ReferenceWIRDatabase",
]


def _rolling_median_ref(values, window: int = 3) -> float:
    """Pre-vectorization rolling median (always via ``np.median``)."""
    vals = list(values)[-window:]
    return float(np.median(np.asarray(vals, dtype=float)))


def _partition_contiguous_ref(weights, num_parts, target_shares=None) -> Partition1D:
    """Pre-vectorization greedy cut placement (sequential Python loop)."""
    w = np.asarray(list(weights), dtype=float)
    if target_shares is None:
        shares = np.full(num_parts, 1.0 / num_parts)
    else:
        shares = np.asarray(list(target_shares), dtype=float)
        shares = shares / shares.sum()
    total = w.sum()
    prefix = np.concatenate([[0.0], np.cumsum(w)])
    if total <= 0.0:
        bounds = np.linspace(0, w.size, num_parts + 1).round().astype(int)
        return Partition1D(boundaries=tuple(int(b) for b in bounds))
    cumulative_targets = np.cumsum(shares) * total
    boundaries = [0]
    for part in range(num_parts - 1):
        target = cumulative_targets[part]
        lo = boundaries[-1] + 1
        hi = w.size - (num_parts - part - 1)
        if lo > hi:
            boundaries.append(boundaries[-1])
            continue
        idx = int(np.searchsorted(prefix, target, side="left"))
        candidates = [c for c in (idx - 1, idx, idx + 1) if lo <= c <= hi]
        if not candidates:
            idx = min(max(idx, lo), hi)
            candidates = [idx]
        best = min(candidates, key=lambda c: abs(prefix[c] - target))
        boundaries.append(int(best))
    boundaries.append(int(w.size))
    return Partition1D(boundaries=tuple(boundaries))


def _owners_ref(partition: Partition1D) -> np.ndarray:
    """Pre-vectorization per-part fill of the item -> owner array."""
    owners = np.empty(partition.num_items, dtype=np.int64)
    for part in range(partition.num_parts):
        start, stop = partition.part_range(part)
        owners[start:stop] = part
    return owners


def _migration_volume_ref(old_owners, new_owners, weights) -> float:
    """Pre-vectorization migration volume (with the historical copies)."""
    old = np.asarray(list(old_owners), dtype=np.int64)
    new = np.asarray(list(new_owners), dtype=np.int64)
    w = np.asarray(list(weights), dtype=float)
    moved = old != new
    return float(w[moved].sum())


class ReferenceDegradationTracker:
    """Pre-vectorization degradation accumulator (``np.median`` smoothing)."""

    def __init__(self, window: int = 3) -> None:
        self.window = window
        self._reference_time = None
        self._recent_times: List[float] = []
        self._degradation = 0.0
        self._iterations_since_reset = 0

    @property
    def degradation(self) -> float:
        """Accumulated degradation since the last reset, in seconds."""
        return self._degradation

    @property
    def iterations_since_reset(self) -> int:
        """Number of iterations observed since the last reset."""
        return self._iterations_since_reset

    def observe(self, iteration_time: float) -> float:
        """Record one iteration time; returns the updated degradation."""
        self._recent_times.append(float(iteration_time))
        if len(self._recent_times) > self.window:
            self._recent_times = self._recent_times[-self.window :]
        if self._reference_time is None:
            self._reference_time = float(iteration_time)
        smoothed = _rolling_median_ref(self._recent_times, self.window)
        self._degradation += smoothed - self._reference_time
        self._iterations_since_reset += 1
        return self._degradation

    def reset(self) -> None:
        """Reset after a LB step."""
        self._reference_time = None
        self._recent_times = []
        self._degradation = 0.0
        self._iterations_since_reset = 0


class ReferenceStripePartitioner:
    """Pre-vectorization stripe partitioner (sequential cut loop)."""

    def __init__(self, num_pes: int) -> None:
        check_positive_int(num_pes, "num_pes")
        self.num_pes = num_pes

    def partition(self, column_loads, *, target_shares=None) -> StripePartition:
        """Partition columns with the historical sequential cut placement."""
        loads = np.asarray(list(column_loads), dtype=float)
        part = _partition_contiguous_ref(loads, self.num_pes, target_shares)
        return StripePartition(partition=part, column_loads=tuple(loads.tolist()))

    def uniform_partition(self, num_columns: int) -> StripePartition:
        """Initial equal-width decomposition."""
        return self.partition(np.ones(num_columns))


class ReferenceCentralizedLoadBalancer:
    """Pre-vectorization centralized LB step (loop-based helpers)."""

    def __init__(
        self,
        cluster: "ReferenceVirtualCluster",
        policy: WorkloadPolicy,
        *,
        root: int = 0,
        partition_flop_per_column: float = 50.0,
        bytes_per_load_unit: float = 800.0,
    ) -> None:
        self.cluster = cluster
        self.policy = policy
        self.root = root
        self.partition_flop_per_column = partition_flop_per_column
        self.bytes_per_load_unit = bytes_per_load_unit
        self.partitioner = ReferenceStripePartitioner(cluster.size)
        self.history: List[LBStepReport] = []

    @property
    def average_cost(self) -> float:
        """Average virtual cost of the LB steps performed so far (seconds)."""
        if not self.history:
            return 0.0
        return float(np.mean([report.cost for report in self.history]))

    def execute(
        self,
        context: LBContext,
        column_loads,
        current_partition: Optional[StripePartition] = None,
    ) -> LBStepReport:
        """Run one LB step with the historical loop-based helpers."""
        loads = np.asarray(list(column_loads), dtype=float)
        decision = self.policy.decide(context)
        new_partition = self.partitioner.partition(
            loads, target_shares=decision.target_shares
        )
        if current_partition is None:
            migrated = float(loads.sum())
            per_pe_migrated = np.full(
                self.cluster.size, migrated / self.cluster.size
            )
        else:
            old_owners = _owners_ref(current_partition.partition)
            new_owners = _owners_ref(new_partition.partition)
            migrated = _migration_volume_ref(old_owners, new_owners, loads)
            moved = old_owners != new_owners
            sent = np.bincount(
                old_owners[moved], weights=loads[moved], minlength=self.cluster.size
            )
            received = np.bincount(
                new_owners[moved], weights=loads[moved], minlength=self.cluster.size
            )
            per_pe_migrated = sent + received
        partition_seconds = (
            self.partition_flop_per_column
            * loads.size
            / self.cluster.pes[self.root].speed
        )
        cost = self.cluster.charge_lb_step(
            iteration=context.iteration,
            partition_seconds=partition_seconds,
            migration_bytes_per_pe=per_pe_migrated * self.bytes_per_load_unit,
            root=self.root,
        )
        report = LBStepReport(
            iteration=context.iteration,
            decision=decision,
            partition=new_partition,
            migrated_load=migrated,
            cost=cost,
        )
        self.history.append(report)
        self.policy.notify_balanced(context, decision)
        return report


class ReferenceGossipBoard:
    """Dict-based push-gossip board (pre-vectorization implementation)."""

    def __init__(
        self,
        num_ranks: int,
        *,
        config: Optional[GossipConfig] = None,
        seed: SeedLike = None,
        batched_targets: bool = False,
    ) -> None:
        check_positive_int(num_ranks, "num_ranks")
        self.num_ranks = num_ranks
        self.config = config or GossipConfig()
        self.batched_targets = batched_targets
        self._rng = ensure_rng(seed)
        self._views: List[Dict[int, Tuple[float, int]]] = [
            {} for _ in range(num_ranks)
        ]
        self._steps = 0

    # ------------------------------------------------------------------
    @property
    def steps(self) -> int:
        """Number of dissemination steps performed so far."""
        return self._steps

    def publish(self, rank: int, value: float, *, version: Optional[int] = None) -> None:
        """Rank ``rank`` publishes a new ``value`` for itself."""
        v = self._steps if version is None else int(version)
        if v < 0:
            raise ValueError(f"version must be >= 0, got {v}")
        current = self._views[rank].get(rank)
        if current is None or v >= current[1]:
            self._views[rank][rank] = (float(value), v)

    def local_view(self, rank: int) -> Dict[int, float]:
        """The values rank ``rank`` currently knows, keyed by source rank."""
        return {src: value for src, (value, _version) in self._views[rank].items()}

    def is_complete(self) -> bool:
        """True when every rank knows a value for every other rank."""
        return all(len(view) == self.num_ranks for view in self._views)

    def step(self) -> None:
        """One synchronous push round via per-rank dict snapshot/merge."""
        snapshot = [dict(view) for view in self._views]
        if self.batched_targets:
            src_idx, dst_idx = select_push_targets(
                self._rng,
                self.num_ranks,
                self.config.fanout,
                include_root=self.config.include_root,
            )
            for src, dst in zip(src_idx.tolist(), dst_idx.tolist()):
                self._merge_into(dst, snapshot[src])
        else:
            for src in range(self.num_ranks):
                for dst in self._select_targets(src):
                    self._merge_into(dst, snapshot[src])
        self._steps += 1

    def _select_targets(self, src: int) -> List[int]:
        if self.num_ranks == 1:
            return []
        fanout = min(self.config.fanout, self.num_ranks - 1)
        candidates = [r for r in range(self.num_ranks) if r != src]
        chosen = self._rng.choice(len(candidates), size=fanout, replace=False)
        targets = [candidates[int(i)] for i in np.atleast_1d(chosen)]
        if self.config.include_root and src != 0 and 0 not in targets:
            targets.append(0)
        return targets

    def _merge_into(self, dst: int, incoming: Dict[int, Tuple[float, int]]) -> None:
        view = self._views[dst]
        for src, (value, version) in incoming.items():
            current = view.get(src)
            if current is None or version > current[1]:
                view[src] = (value, version)


class ReferenceWIRDatabase:
    """Dict-backed replicated WIR database (pre-vectorization)."""

    def __init__(
        self,
        num_ranks: int,
        *,
        use_gossip: bool = True,
        seed: SeedLike = None,
        batched_targets: bool = False,
    ) -> None:
        self.num_ranks = num_ranks
        self._board = (
            ReferenceGossipBoard(
                num_ranks, seed=seed, batched_targets=batched_targets
            )
            if use_gossip
            else None
        )
        self._instant: Dict[int, float] = {}

    def publish(self, rank: int, wir: float) -> None:
        """Rank ``rank`` publishes its current WIR."""
        if self._board is not None:
            self._board.publish(rank, wir)
        else:
            self._instant[rank] = float(wir)

    def disseminate(self) -> None:
        """One gossip step (no-op in instant mode)."""
        if self._board is not None:
            self._board.step()

    def view(self, rank: int) -> Dict[int, float]:
        """WIR values known by ``rank``."""
        if self._board is not None:
            return self._board.local_view(rank)
        return dict(self._instant)


class ReferenceVirtualCluster:
    """Object-loop virtual cluster (pre-vectorization implementation)."""

    def __init__(
        self,
        num_pes: int,
        *,
        pe_speed: float = 1.0e9,
        cost_model: Optional[CommCostModel] = None,
    ) -> None:
        check_positive_int(num_pes, "num_pes")
        check_positive(pe_speed, "pe_speed")
        self.pes: List[ProcessingElement] = [
            ProcessingElement(rank=r, speed=pe_speed) for r in range(num_pes)
        ]
        self.comm = SimCommunicator(self.pes, cost_model)
        self.trace = ClusterTrace(num_pes=num_pes)

    @property
    def size(self) -> int:
        """Number of PEs."""
        return len(self.pes)

    @property
    def pe_speed(self) -> float:
        """Speed of the (homogeneous) PEs in FLOP/s."""
        return self.pes[0].speed

    @property
    def now(self) -> float:
        """Common virtual time."""
        return max(pe.now for pe in self.pes)

    def compute_step(self, loads_flop, *, iteration=None, sync_bytes=8.0):
        """One bulk-synchronous compute phase (per-PE Python loop)."""
        from repro.simcluster.cluster import StepResult

        loads = np.asarray(list(loads_flop), dtype=float)
        if loads.shape != (self.size,):
            raise ValueError(
                f"loads_flop must have length {self.size}, got {loads.shape}"
            )
        if (loads < 0).any():
            raise ValueError("loads_flop must all be >= 0")
        start = self.now
        pe_times = []
        for pe, flops in zip(self.pes, loads):
            pe_times.append(pe.compute(float(flops)))
        self.comm._collective_sync(sync_bytes)
        end = self.now
        elapsed = end - start
        result = StepResult(
            elapsed=elapsed, pe_times=tuple(pe_times), completed_at=end
        )
        if iteration is not None:
            self.trace.record_iteration(
                iteration=iteration,
                elapsed=elapsed,
                pe_compute_times=pe_times,
                timestamp=end,
            )
        return result

    def charge_lb_step(
        self,
        *,
        iteration: int,
        partition_seconds: float = 0.0,
        migration_bytes_per_pe=0.0,
        root: int = 0,
    ) -> float:
        """Charge one LB step via communicator collectives (loop version)."""
        check_non_negative(partition_seconds, "partition_seconds")
        start = self.now
        self.comm.gather([0.0] * self.size, root=root)
        self.pes[root].spend(partition_seconds)
        self.comm.bcast(None, root=root, nbytes=8.0 * self.size)
        if np.isscalar(migration_bytes_per_pe):
            volumes = np.full(self.size, float(migration_bytes_per_pe))
        else:
            volumes = np.asarray(list(migration_bytes_per_pe), dtype=float)
        max_volume = float(volumes.max()) if volumes.size else 0.0
        self.comm._collective_sync(max_volume)
        end = self.now
        elapsed = end - start
        for pe in self.pes:
            pe.lb_time += elapsed
        self.trace.record_lb_event(iteration=iteration, cost=elapsed, timestamp=end)
        return elapsed

    def synchronize(self) -> float:
        """Barrier: align every PE clock."""
        return synchronize(pe.clock for pe in self.pes)


class ReferenceIterativeRunner:
    """Pre-vectorization Algorithm 1 driver (per-rank Python loops).

    Accepts the same applications and policies as
    :class:`repro.runtime.skeleton.IterativeRunner` but executes the
    historical object-loop hot path: per-stripe slice sums, a list of scalar
    WIR estimators, per-rank publishes and eagerly materialized WIR views.
    """

    def __init__(
        self,
        cluster: ReferenceVirtualCluster,
        application: StripedApplication,
        *,
        workload_policy: Optional[WorkloadPolicy] = None,
        trigger_policy: Optional[TriggerPolicy] = None,
        use_gossip: bool = True,
        wir_smoothing: float = 0.5,
        initial_lb_cost_estimate: float = 0.0,
        partition_flop_per_column: float = 50.0,
        bytes_per_load_unit: float = 800.0,
        seed: SeedLike = None,
        batched_gossip_targets: bool = False,
    ) -> None:
        check_non_negative(initial_lb_cost_estimate, "initial_lb_cost_estimate")
        self.cluster = cluster
        self.application = application
        self.workload_policy = workload_policy or StandardPolicy()
        self.trigger_policy = trigger_policy or DegradationTrigger()
        self.initial_lb_cost_estimate = initial_lb_cost_estimate
        rng = ensure_rng(seed)
        self.wir_db = ReferenceWIRDatabase(
            cluster.size,
            use_gossip=use_gossip,
            seed=rng,
            batched_targets=batched_gossip_targets,
        )
        self.wir_estimates = [
            WIREstimate(smoothing=wir_smoothing) for _ in range(cluster.size)
        ]
        self.degradation = ReferenceDegradationTracker()
        self.load_balancer = ReferenceCentralizedLoadBalancer(
            cluster,
            self.workload_policy,
            partition_flop_per_column=partition_flop_per_column,
            bytes_per_load_unit=bytes_per_load_unit,
        )
        self.partitioner = ReferenceStripePartitioner(cluster.size)
        self.partition: StripePartition = self.partitioner.uniform_partition(
            application.num_columns
        )
        self._last_lb_iteration = 0
        self._total_iterations: Optional[int] = None

    # ------------------------------------------------------------------
    def _stripe_loads(self) -> np.ndarray:
        cols = self.application.column_loads()
        bounds = np.asarray(self.partition.partition.boundaries)
        return np.asarray(
            [cols[bounds[i] : bounds[i + 1]].sum() for i in range(self.cluster.size)]
        )

    def _average_lb_cost(self) -> float:
        measured = self.load_balancer.average_cost
        if measured > 0.0:
            return measured
        return self.initial_lb_cost_estimate

    def _build_context(self, iteration: int, stripe_loads: np.ndarray) -> LBContext:
        return LBContext(
            iteration=iteration,
            pe_workloads=tuple(
                float(load * self.application.flop_per_load_unit)
                for load in stripe_loads
            ),
            wir_views=tuple(
                self.wir_db.view(rank) for rank in range(self.cluster.size)
            ),
            last_lb_iteration=self._last_lb_iteration,
            accumulated_degradation=self.degradation.degradation,
            average_lb_cost=self._average_lb_cost(),
            pe_speed=self.cluster.pe_speed,
            total_iterations=self._total_iterations,
        )

    # ------------------------------------------------------------------
    def run(self, iterations: int) -> RunResult:
        """Execute ``iterations`` application iterations (historical loop)."""
        check_positive_int(iterations, "iterations")
        self._total_iterations = iterations
        result = RunResult(
            trace=self.cluster.trace,
            policy_name=self.workload_policy.name,
            trigger_name=self.trigger_policy.name,
        )

        for iteration in range(iterations):
            stripe_loads = self._stripe_loads()
            flop_per_pe = stripe_loads * self.application.flop_per_load_unit
            step = self.cluster.compute_step(flop_per_pe, iteration=iteration)
            self.application.advance()

            new_stripe_loads = self._stripe_loads()
            for rank in range(self.cluster.size):
                workload = float(
                    new_stripe_loads[rank] * self.application.flop_per_load_unit
                )
                rate = self.wir_estimates[rank].observe(workload)
                self.wir_db.publish(rank, rate)
            self.wir_db.disseminate()

            self.degradation.observe(step.elapsed)

            context = self._build_context(iteration, new_stripe_loads)
            if self.trigger_policy.should_balance(context):
                report = self.load_balancer.execute(
                    context,
                    self.application.column_loads(),
                    current_partition=self.partition,
                )
                result.lb_reports.append(report)
                self.partition = report.partition
                self._last_lb_iteration = iteration + 1
                self.degradation.reset()
                self.trigger_policy.notify_balanced(context)
                rebalanced = self._stripe_loads()
                for rank in range(self.cluster.size):
                    self.wir_estimates[rank].reset_after_migration(
                        float(
                            rebalanced[rank] * self.application.flop_per_load_unit
                        )
                    )

        return result
